// Package transport abstracts the datagram channel under the LTNC
// dissemination: a Transport sends and receives framed packets to and
// from peers identified by opaque addresses. Two implementations are
// provided — Switch/ChanTransport, an in-memory network with injectable
// loss and latency for deterministic tests, and UDPTransport over a real
// net.UDPConn with a packet pool so the receive hot path does not
// allocate per datagram.
//
// The paper evaluates LTNC on simulated lossy push channels; this package
// is the boundary where the same node logic (internal/livenet,
// internal/session) runs unchanged over goroutine channels or real
// sockets.
package transport

import (
	"context"
	"errors"
	"sync"
)

// Addr is an opaque peer address. For UDPTransport it is "host:port"; for
// ChanTransport it is whatever name the port was attached under.
type Addr string

// MaxFrame is the largest frame a Transport must accept: the in-memory
// switch enforces it and UDP datagrams cannot exceed it anyway.
const MaxFrame = 64 * 1024

// Errors shared by transport implementations.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
	ErrFrameTooBig = errors.New("transport: frame exceeds MaxFrame")
)

// framePool recycles MaxFrame-sized buffers across every transport in the
// process: UDP receive buffers, in-memory switch deliveries and outgoing
// frame assembly all draw from one pool, so the steady-state datagram path
// allocates nothing and a relay daemon's hop-to-hop forwarding reuses the
// same handful of buffers.
var framePool = sync.Pool{New: func() any {
	buf := make([]byte, MaxFrame)
	return &buf
}}

// GetBuf returns a pooled MaxFrame-capacity buffer (full length; reslice
// as needed). Return it with PutBuf when the bytes are no longer live.
func GetBuf() *[]byte { return framePool.Get().(*[]byte) }

// PutBuf returns a buffer obtained from GetBuf to the pool. Buffers that
// did not come from GetBuf must not be passed here.
func PutBuf(buf *[]byte) {
	if buf == nil || cap(*buf) < MaxFrame {
		return
	}
	*buf = (*buf)[:MaxFrame]
	framePool.Put(buf)
}

// Frame is one received datagram. Data is valid until Release is called;
// receivers that keep bytes past Release must copy them. Release returns
// pooled buffers to their transport and is safe to call once (further
// calls are no-ops).
type Frame struct {
	From    Addr
	Data    []byte
	release func()
}

// NewFrame builds a frame with an optional release hook (for transports
// and tests).
func NewFrame(from Addr, data []byte, release func()) Frame {
	return Frame{From: from, Data: data, release: release}
}

// Release returns the frame's buffer to its owner.
func (f *Frame) Release() {
	if f.release != nil {
		f.release()
		f.release = nil
	}
	f.Data = nil
}

// Transport sends and receives framed packets. Send must be safe for
// concurrent use with Recv and with other Sends; one consumer at a time
// may call Recv.
type Transport interface {
	// LocalAddr returns the address peers use to reach this transport.
	LocalAddr() Addr
	// Send transmits one frame to the peer. Delivery is best-effort:
	// datagram semantics, no retransmission, frames may be dropped. The
	// frame buffer belongs to the caller and may be reused the moment
	// Send returns — senders serialize into pooled buffers — so an
	// implementation that queues the frame for later delivery must copy
	// it first.
	Send(to Addr, frame []byte) error
	// Recv blocks until a frame arrives, the context is cancelled, or the
	// transport is closed (ErrClosed).
	Recv(ctx context.Context) (Frame, error)
	// Close releases the transport; pending and future Recvs fail with
	// ErrClosed.
	Close() error
}

// BatchSender is optionally implemented by transports that can hand
// several frames for the same destination to the network in one
// operation — one sendmmsg (or UDP-GSO sendmsg) syscall on the Linux UDP
// fast path. The frame buffers follow the same ownership rule as Send:
// they belong to the caller the moment SendBatch returns. It returns how
// many frames were handed to the network before the first error.
type BatchSender interface {
	SendBatch(to Addr, frames [][]byte) (int, error)
}

// BatchRecver is optionally implemented by transports that can surface
// several received frames per wakeup — one recvmmsg syscall (plus GRO
// coalescing) on the Linux UDP fast path. RecvBatch blocks like Recv
// until at least one frame is available, then fills out with up to
// len(out) frames and returns the count. Each returned frame must be
// Released exactly as if it came from Recv.
type BatchRecver interface {
	RecvBatch(ctx context.Context, out []Frame) (int, error)
}

// SendBatch sends frames to one peer through t, using the transport's
// batch path when it has one and falling back to per-frame Send
// otherwise. It returns how many frames were handed to the network.
func SendBatch(t Transport, to Addr, frames [][]byte) (int, error) {
	if bs, ok := t.(BatchSender); ok {
		return bs.SendBatch(to, frames)
	}
	for i, f := range frames {
		if err := t.Send(to, f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// RecvBatch receives up to len(out) frames from t in one call, blocking
// until at least one is available. Transports without a batch path
// deliver exactly one frame per call, so callers can consume any
// Transport through this one loop. len(out) must be at least 1.
func RecvBatch(ctx context.Context, t Transport, out []Frame) (int, error) {
	if br, ok := t.(BatchRecver); ok {
		return br.RecvBatch(ctx, out)
	}
	f, err := t.Recv(ctx)
	if err != nil {
		return 0, err
	}
	out[0] = f
	return 1, nil
}
