// Package transport abstracts the datagram channel under the LTNC
// dissemination: a Transport sends and receives framed packets to and
// from peers identified by opaque addresses. Two implementations are
// provided — Switch/ChanTransport, an in-memory network with injectable
// loss and latency for deterministic tests, and UDPTransport over a real
// net.UDPConn with a packet pool so the receive hot path does not
// allocate per datagram.
//
// The paper evaluates LTNC on simulated lossy push channels; this package
// is the boundary where the same node logic (internal/livenet,
// internal/session) runs unchanged over goroutine channels or real
// sockets.
package transport

import (
	"context"
	"errors"
)

// Addr is an opaque peer address. For UDPTransport it is "host:port"; for
// ChanTransport it is whatever name the port was attached under.
type Addr string

// MaxFrame is the largest frame a Transport must accept: the in-memory
// switch enforces it and UDP datagrams cannot exceed it anyway.
const MaxFrame = 64 * 1024

// Errors shared by transport implementations.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
	ErrFrameTooBig = errors.New("transport: frame exceeds MaxFrame")
)

// Frame is one received datagram. Data is valid until Release is called;
// receivers that keep bytes past Release must copy them. Release returns
// pooled buffers to their transport and is safe to call once (further
// calls are no-ops).
type Frame struct {
	From    Addr
	Data    []byte
	release func()
}

// NewFrame builds a frame with an optional release hook (for transports
// and tests).
func NewFrame(from Addr, data []byte, release func()) Frame {
	return Frame{From: from, Data: data, release: release}
}

// Release returns the frame's buffer to its owner.
func (f *Frame) Release() {
	if f.release != nil {
		f.release()
		f.release = nil
	}
	f.Data = nil
}

// Transport sends and receives framed packets. Send must be safe for
// concurrent use with Recv and with other Sends; one consumer at a time
// may call Recv.
type Transport interface {
	// LocalAddr returns the address peers use to reach this transport.
	LocalAddr() Addr
	// Send transmits one frame to the peer. Delivery is best-effort:
	// datagram semantics, no retransmission, frames may be dropped.
	Send(to Addr, frame []byte) error
	// Recv blocks until a frame arrives, the context is cancelled, or the
	// transport is closed (ErrClosed).
	Recv(ctx context.Context) (Frame, error)
	// Close releases the transport; pending and future Recvs fail with
	// ErrClosed.
	Close() error
}
