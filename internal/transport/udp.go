package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// udpPollInterval bounds how long a blocked Recv takes to notice context
// cancellation: reads run with a rolling deadline and re-check the context
// on every timeout.
const udpPollInterval = 250 * time.Millisecond

// UDPTransport implements Transport over a net.UDPConn. Receive buffers
// come from the process-wide frame pool (GetBuf/PutBuf), so the
// steady-state receive path performs no per-datagram allocation; callers
// return buffers with Frame.Release. Destination addresses are resolved
// once and cached.
type UDPTransport struct {
	conn   *net.UDPConn
	peers  sync.Map // Addr -> *net.UDPAddr
	closed atomic.Bool
}

var _ Transport = (*UDPTransport)(nil)

// ListenUDP opens a UDP transport bound to addr ("127.0.0.1:0" picks a
// free port; query LocalAddr for the result).
func ListenUDP(addr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &UDPTransport{conn: conn}, nil
}

// LocalAddr returns the bound "host:port".
func (t *UDPTransport) LocalAddr() Addr { return Addr(t.conn.LocalAddr().String()) }

// Send transmits one datagram to the peer at "host:port".
func (t *UDPTransport) Send(to Addr, frame []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	dst, err := t.resolve(to)
	if err != nil {
		return err
	}
	if _, err := t.conn.WriteToUDP(frame, dst); err != nil {
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

func (t *UDPTransport) resolve(to Addr) (*net.UDPAddr, error) {
	if cached, ok := t.peers.Load(to); ok {
		return cached.(*net.UDPAddr), nil
	}
	ua, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownPeer, to, err)
	}
	t.peers.Store(to, ua)
	return ua, nil
}

// Recv blocks for the next datagram. The returned frame's buffer belongs
// to the transport's pool: call Release when done with Data.
func (t *UDPTransport) Recv(ctx context.Context) (Frame, error) {
	bufp := GetBuf()
	for {
		if t.closed.Load() {
			PutBuf(bufp)
			return Frame{}, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			PutBuf(bufp)
			return Frame{}, err
		}
		deadline := time.Now().Add(udpPollInterval)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		if err := t.conn.SetReadDeadline(deadline); err != nil {
			PutBuf(bufp)
			return Frame{}, fmt.Errorf("transport: set deadline: %w", err)
		}
		n, from, err := t.conn.ReadFromUDP(*bufp)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				continue
			}
			PutBuf(bufp)
			if t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return Frame{}, ErrClosed
			}
			return Frame{}, fmt.Errorf("transport: recv: %w", err)
		}
		return Frame{
			From:    Addr(from.String()),
			Data:    (*bufp)[:n],
			release: func() { PutBuf(bufp) },
		}, nil
	}
}

// Close shuts the socket down; a blocked Recv returns ErrClosed.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	return t.conn.Close()
}
