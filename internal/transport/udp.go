package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// UDPConfig tunes the UDP transport. The zero value is the default used
// by ListenUDP: batched I/O where the platform supports it (Linux
// amd64/arm64: recvmmsg/sendmmsg with UDP GSO/GRO when the kernel
// accepts them), a single receive shard, 32-frame batches.
type UDPConfig struct {
	// Readers is the number of receive shards. With Readers > 1 on the
	// Linux fast path the transport binds that many SO_REUSEPORT sockets
	// to the same port, each drained by its own goroutine into a
	// lock-free SPSC ring — the kernel hashes peers across the sockets,
	// so independent flows land on independent cores. Clamped to 1 on
	// platforms without the fast path. Default 1.
	Readers int
	// Batch is the frame count per recvmmsg/sendmmsg syscall (and the
	// segment count cap for a GSO super-send). Default 32, max 64 (the
	// kernel's UDP_MAX_SEGMENTS).
	Batch int
	// RingSize is the per-reader ring capacity in frames; when a ring is
	// full the reader parks and lets the kernel socket buffer absorb the
	// burst, so nothing is dropped in user space. Default 1024.
	RingSize int
	// DisableBatch forces the portable per-frame syscall path even where
	// the fast path is available — the escape hatch, and the baseline
	// leg of the transport benchmark.
	DisableBatch bool
	// DisableGSO / DisableGRO turn off segmentation-offload probing
	// individually while keeping sendmmsg/recvmmsg batching.
	DisableGSO bool
	DisableGRO bool
}

func (c *UDPConfig) setDefaults() {
	if c.Readers <= 0 || c.DisableBatch || !batchSupported {
		c.Readers = 1
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.Batch > 64 {
		c.Batch = 64
	}
	if c.RingSize < c.Batch {
		c.RingSize = 1024
	}
}

// UDPStats is a snapshot of the transport's syscall and frame counters,
// the raw material for the syscalls/packet numbers in BENCH_decode.json.
// Syscall counts are maintained by the transport itself (one increment
// per read/write operation handed to the kernel), so no strace is needed
// to measure the batching win.
type UDPStats struct {
	// SendSyscalls counts write-side syscalls (WriteToUDP, sendmmsg and
	// GSO sendmsg each count once); SentFrames the frames they carried.
	SendSyscalls int64
	SentFrames   int64
	// RecvSyscalls counts read-side syscalls; RecvFrames the frames they
	// produced (after GRO splitting).
	RecvSyscalls int64
	RecvFrames   int64
	// GSOBatches counts sends that rode a GSO super-payload; GROFrames
	// counts frames recovered by splitting GRO super-datagrams.
	GSOBatches int64
	GROFrames  int64
	// BatchEnabled/GSO/GRO report what socket setup probing found;
	// Readers is the active receive shard count.
	BatchEnabled bool
	GSO          bool
	GRO          bool
	Readers      int
}

type udpCounters struct {
	sendSyscalls atomic.Int64
	sentFrames   atomic.Int64
	recvSyscalls atomic.Int64
	recvFrames   atomic.Int64
	gsoBatches   atomic.Int64
	groFrames    atomic.Int64
}

// UDPTransport implements Transport over UDP sockets. On Linux
// amd64/arm64 it runs a batched fast path — recvmmsg readers feeding
// lock-free rings, sendmmsg/GSO on the way out — and everywhere else a
// portable per-frame path with identical semantics (see udp_linux.go /
// udp_fallback.go). Receive buffers come from the process-wide frame
// pool (GetBuf/PutBuf), so the steady-state receive path performs no
// per-datagram allocation; callers return buffers with Frame.Release.
// Destination addresses are resolved once and cached.
type UDPTransport struct {
	cfg    UDPConfig
	conn   *net.UDPConn
	peers  sync.Map // Addr -> *net.UDPAddr
	closed atomic.Bool
	done   chan struct{}

	// Context-cancellation watcher for the portable blocking read path:
	// one goroutine per distinct context, armed on first use, that calls
	// SetReadDeadline(past) exactly once on cancellation. The steady
	// state receive path performs no deadline syscalls at all (the old
	// implementation paid one SetReadDeadline per datagram to poll a
	// 250ms rolling deadline).
	watchMu   sync.Mutex
	watchCtx  context.Context
	watchStop chan struct{}

	stats udpCounters
	batch batchState
}

var _ Transport = (*UDPTransport)(nil)
var _ BatchSender = (*UDPTransport)(nil)
var _ BatchRecver = (*UDPTransport)(nil)

// ListenUDP opens a UDP transport bound to addr ("127.0.0.1:0" picks a
// free port; query LocalAddr for the result) with the default UDPConfig.
func ListenUDP(addr string) (*UDPTransport, error) {
	return ListenUDPConfig(addr, UDPConfig{})
}

// ListenUDPConfig opens a UDP transport with explicit batching, shard
// and offload settings.
func ListenUDPConfig(addr string, cfg UDPConfig) (*UDPTransport, error) {
	cfg.setDefaults()
	lc := net.ListenConfig{Control: reusePortControl(cfg)}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	t := &UDPTransport{
		cfg:  cfg,
		conn: pc.(*net.UDPConn),
		done: make(chan struct{}),
	}
	if err := t.initBatch(); err != nil {
		pc.Close()
		return nil, fmt.Errorf("transport: batch setup: %w", err)
	}
	return t, nil
}

// LocalAddr returns the bound "host:port".
func (t *UDPTransport) LocalAddr() Addr { return Addr(t.conn.LocalAddr().String()) }

// Stats snapshots the syscall/frame counters and the probed capabilities.
func (t *UDPTransport) Stats() UDPStats {
	s := UDPStats{
		SendSyscalls: t.stats.sendSyscalls.Load(),
		SentFrames:   t.stats.sentFrames.Load(),
		RecvSyscalls: t.stats.recvSyscalls.Load(),
		RecvFrames:   t.stats.recvFrames.Load(),
		GSOBatches:   t.stats.gsoBatches.Load(),
		GROFrames:    t.stats.groFrames.Load(),
		Readers:      1,
	}
	s.BatchEnabled, s.GSO, s.GRO, s.Readers = t.batchInfo()
	return s
}

// Send transmits one datagram to the peer at "host:port".
func (t *UDPTransport) Send(to Addr, frame []byte) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	dst, err := t.resolve(to)
	if err != nil {
		return err
	}
	t.stats.sendSyscalls.Add(1)
	if _, err := t.conn.WriteToUDP(frame, dst); err != nil {
		// Mirror Recv: a send into a socket closed under us is the
		// transport's own lifecycle, not an opaque network error.
		if t.closed.Load() || errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	t.stats.sentFrames.Add(1)
	return nil
}

// SendBatch transmits frames to one peer, batching them through
// sendmmsg/GSO on the fast path (a fraction of a syscall per frame) and
// degrading to per-frame sends elsewhere. It returns how many frames
// were handed to the kernel before the first error.
func (t *UDPTransport) SendBatch(to Addr, frames [][]byte) (int, error) {
	if t.closed.Load() {
		return 0, ErrClosed
	}
	for _, f := range frames {
		if len(f) > MaxFrame {
			return 0, ErrFrameTooBig
		}
	}
	if t.batchEnabled() {
		return t.sendBatchMmsg(to, frames)
	}
	for i, f := range frames {
		if err := t.Send(to, f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

func (t *UDPTransport) resolve(to Addr) (*net.UDPAddr, error) {
	if cached, ok := t.peers.Load(to); ok {
		return cached.(*net.UDPAddr), nil
	}
	ua, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownPeer, to, err)
	}
	t.peers.Store(to, ua)
	return ua, nil
}

// Recv blocks for the next datagram. The returned frame's buffer belongs
// to the transport's pool: call Release when done with Data.
func (t *UDPTransport) Recv(ctx context.Context) (Frame, error) {
	if t.batchEnabled() {
		var one [1]Frame
		if _, err := t.recvBatchRings(ctx, one[:]); err != nil {
			return Frame{}, err
		}
		return one[0], nil
	}
	return t.recvDirect(ctx)
}

// RecvBatch fills out with every frame already queued (blocking for the
// first), up to len(out). On the fast path whole recvmmsg batches and
// GRO splits surface in one call; the portable path yields one frame per
// call.
func (t *UDPTransport) RecvBatch(ctx context.Context, out []Frame) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	if t.batchEnabled() {
		return t.recvBatchRings(ctx, out)
	}
	f, err := t.recvDirect(ctx)
	if err != nil {
		return 0, err
	}
	out[0] = f
	return 1, nil
}

// recvDirect is the portable blocking receive: one ReadFromUDP syscall
// per datagram, zero deadline syscalls in the steady state (context
// cancellation is delegated to the armed watcher).
func (t *UDPTransport) recvDirect(ctx context.Context) (Frame, error) {
	if t.closed.Load() {
		return Frame{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Frame{}, err
	}
	t.watch(ctx)
	bufp := GetBuf()
	for {
		t.stats.recvSyscalls.Add(1)
		n, from, err := t.conn.ReadFromUDP(*bufp)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				if cerr := ctx.Err(); cerr != nil {
					PutBuf(bufp)
					return Frame{}, cerr
				}
				if t.closed.Load() {
					PutBuf(bufp)
					return Frame{}, ErrClosed
				}
				// A stale wake-deadline left by a previous context's
				// watcher that lost the re-arm race: clear it and retry.
				t.conn.SetReadDeadline(time.Time{})
				continue
			}
			PutBuf(bufp)
			if t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return Frame{}, ErrClosed
			}
			return Frame{}, fmt.Errorf("transport: recv: %w", err)
		}
		t.stats.recvFrames.Add(1)
		return Frame{
			From:    Addr(from.String()),
			Data:    (*bufp)[:n],
			release: func() { PutBuf(bufp) },
		}, nil
	}
}

// watch arms the cancellation watcher for ctx; consecutive receives
// under the same context reuse the armed watcher, so the hot path does
// no work beyond one mutex handoff. On cancellation the watcher performs
// a single SetReadDeadline(past) to wake the blocked reader.
func (t *UDPTransport) watch(ctx context.Context) {
	if ctx.Done() == nil {
		return
	}
	t.watchMu.Lock()
	defer t.watchMu.Unlock()
	if t.watchCtx == ctx {
		return
	}
	if t.watchStop != nil {
		close(t.watchStop)
	}
	// A previous watcher may have left its wake-deadline on the socket.
	t.conn.SetReadDeadline(time.Time{})
	stop := make(chan struct{})
	t.watchCtx, t.watchStop = ctx, stop
	go func() {
		select {
		case <-ctx.Done():
			t.conn.SetReadDeadline(time.Unix(1, 0))
		case <-stop:
		case <-t.done:
		}
	}()
}

// Close shuts the socket down; a blocked Recv returns ErrClosed.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	err := t.conn.Close()
	t.closeBatch()
	return err
}
