package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func coalescerPair(t *testing.T) (*Coalescer, *ChanTransport, *ChanTransport) {
	t.Helper()
	sw, err := NewSwitch(SwitchConfig{QueueDepth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sw.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewCoalescer(a, 0), a, b
}

func TestCoalescerDeliversOnFlush(t *testing.T) {
	c, _, b := coalescerPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for i := 0; i < 10; i++ {
		frame := append(c.Stage(), fmt.Sprintf("frame %d", i)...)
		c.Commit(b.LocalAddr(), frame)
	}
	// Below the flush window: nothing on the wire yet.
	short, scancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer scancel()
	if _, err := b.Recv(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("frames leaked before Flush: %v", err)
	}
	sent, err := c.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if sent != 10 {
		t.Fatalf("flush sent = %d, want 10", sent)
	}
	for i := 0; i < 10; i++ {
		f, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("frame %d", i); string(f.Data) != want {
			t.Fatalf("frame %d = %q, want %q (order lost)", i, f.Data, want)
		}
		f.Release()
	}
}

func TestCoalescerEarlyFlushAtWindow(t *testing.T) {
	sw, _ := NewSwitch(SwitchConfig{QueueDepth: 4096})
	a, _ := sw.Attach("a")
	b, _ := sw.Attach("b")
	defer a.Close()
	defer b.Close()
	c := NewCoalescer(a, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for i := 0; i < 4; i++ {
		c.Commit(b.LocalAddr(), append(c.Stage(), byte(i)))
	}
	// Window reached: the batch went out without an explicit Flush.
	for i := 0; i < 4; i++ {
		f, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("early flush did not deliver frame %d: %v", i, err)
		}
		f.Release()
	}
	sent, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if sent != 4 {
		t.Fatalf("window sent = %d, want 4 (early flush must be counted)", sent)
	}
}

func TestCoalescerMultiplePeers(t *testing.T) {
	sw, _ := NewSwitch(SwitchConfig{QueueDepth: 4096})
	a, _ := sw.Attach("a")
	b, _ := sw.Attach("b")
	d, _ := sw.Attach("d")
	defer a.Close()
	defer b.Close()
	defer d.Close()
	c := NewCoalescer(a, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	c.Commit(b.LocalAddr(), append(c.Stage(), "to-b-1"...))
	c.Commit(d.LocalAddr(), append(c.Stage(), "to-d-1"...))
	c.Commit(b.LocalAddr(), append(c.Stage(), "to-b-2"...))
	if sent, err := c.Flush(); err != nil || sent != 3 {
		t.Fatalf("flush = %d, %v", sent, err)
	}
	for _, want := range []string{"to-b-1", "to-b-2"} {
		f, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if string(f.Data) != want {
			t.Fatalf("b got %q, want %q", f.Data, want)
		}
		f.Release()
	}
	f, err := d.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data) != "to-d-1" {
		t.Fatalf("d got %q", f.Data)
	}
	f.Release()
}

func TestCoalescerAcceptsHeapFrames(t *testing.T) {
	c, _, b := coalescerPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// A frame built outside Stage (or one that outgrew the slab tail and
	// reallocated) must still be carried.
	heap := []byte("heap frame")
	c.Commit(b.LocalAddr(), heap)
	staged := append(c.Stage(), "staged frame"...)
	c.Commit(b.LocalAddr(), staged)
	if sent, err := c.Flush(); err != nil || sent != 2 {
		t.Fatalf("flush = %d, %v", sent, err)
	}
	for _, want := range []string{"heap frame", "staged frame"} {
		f, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if string(f.Data) != want {
			t.Fatalf("got %q, want %q", f.Data, want)
		}
		f.Release()
	}
}

func TestCoalescerSlabRetirement(t *testing.T) {
	c, _, b := coalescerPair(t)
	// Commit frames until the first slab retires (total staged bytes
	// beyond MaxFrame-slabReserve) and verify every frame survives intact
	// — i.e. retired slabs are not recycled until Flush.
	const frameLen = 9000
	n := MaxFrame/frameLen + 2
	for i := 0; i < n; i++ {
		frame := c.Stage()
		for j := 0; j < frameLen; j++ {
			frame = append(frame, byte(i))
		}
		c.Commit(b.LocalAddr(), frame)
	}
	if sent, err := c.Flush(); err != nil || sent != int64(n) {
		t.Fatalf("flush = %d, %v; want %d", sent, err, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		f, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Data) != frameLen || f.Data[0] != byte(i) || f.Data[frameLen-1] != byte(i) {
			t.Fatalf("frame %d corrupted: len=%d first=%d last=%d",
				i, len(f.Data), f.Data[0], f.Data[frameLen-1])
		}
		f.Release()
	}
}

func TestCoalescerReportsSendError(t *testing.T) {
	c, _, _ := coalescerPair(t)
	c.Commit("nobody", append(c.Stage(), "lost"...))
	if _, err := c.Flush(); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("flush err = %v, want ErrUnknownPeer", err)
	}
	// The error does not stick across windows.
	if _, err := c.Flush(); err != nil {
		t.Fatalf("second flush err = %v, want nil", err)
	}
}

func TestCoalescerEmptyCommitIgnored(t *testing.T) {
	c, _, b := coalescerPair(t)
	c.Commit(b.LocalAddr(), c.Stage())
	if sent, err := c.Flush(); err != nil || sent != 0 {
		t.Fatalf("flush = %d, %v; want 0 frames", sent, err)
	}
}
