package transport

// Coalescer gathers outgoing frames per destination inside one flush
// window (for the session: one push round) and hands each peer's
// gathering to SendBatch in bounded bursts — sendmmsg/GSO on the Linux
// fast path, per-frame sends elsewhere. Frames are serialized directly
// into pooled slabs via Stage/Commit, so batching adds no copy to the
// send path; a peer reaching FlushFrames pending frames is flushed
// early, which both bounds the window's memory and paces what would
// otherwise be one end-of-round mega-burst into syscall-sized chunks.
//
// A Coalescer is not safe for concurrent use; each sending loop owns
// one.
type Coalescer struct {
	tr          Transport
	flushFrames int

	slab  *[]byte   // current staging slab (pooled, MaxFrame bytes)
	off   int       // bytes of slab already committed
	slabs []*[]byte // retired slabs still referenced by pending frames

	pend  map[Addr][][]byte
	order []Addr // stable flush order (map iteration is randomized)

	sent    int64
	sendErr error
}

// slabReserve retires the staging slab when its tail gets smaller than a
// typical frame, so Stage rarely hands out a scratch that appends past
// its capacity (which would fall back to one heap allocation for that
// frame).
const slabReserve = 4096

// DefaultFlushFrames is the per-peer flush window when NewCoalescer is
// given 0: large enough to fill a sendmmsg vector or a GSO super-send,
// small enough to keep bursts inside typical socket buffers.
const DefaultFlushFrames = 32

// NewCoalescer builds a coalescer over t. flushFrames bounds how many
// frames may pend for one peer before an early flush (0 means
// DefaultFlushFrames).
func NewCoalescer(t Transport, flushFrames int) *Coalescer {
	if flushFrames <= 0 {
		flushFrames = DefaultFlushFrames
	}
	return &Coalescer{tr: t, flushFrames: flushFrames, pend: make(map[Addr][][]byte)}
}

// Stage returns an empty scratch slice to serialize the next frame into
// (append to it, then Commit the result). The scratch points into the
// current slab; a frame outgrowing the slab's tail safely reallocates
// onto the heap and is still accepted by Commit.
func (c *Coalescer) Stage() []byte {
	if c.slab == nil {
		c.slab = GetBuf()
		c.off = 0
	}
	return (*c.slab)[c.off:c.off]
}

// Commit records the staged frame for to. Empty frames are ignored. When
// the peer's pending batch reaches the flush window it is sent
// immediately.
func (c *Coalescer) Commit(to Addr, frame []byte) {
	if len(frame) == 0 {
		return
	}
	if c.slab != nil && c.off < len(*c.slab) && &frame[0] == &(*c.slab)[c.off] {
		// The frame landed in the slab tail Stage handed out: claim it.
		c.off += len(frame)
		if len(*c.slab)-c.off < slabReserve {
			c.slabs = append(c.slabs, c.slab)
			c.slab = nil
		}
	}
	batch, ok := c.pend[to]
	if !ok {
		c.order = append(c.order, to)
	}
	batch = append(batch, frame)
	if len(batch) >= c.flushFrames {
		c.flushPeer(to, batch)
		c.pend[to] = batch[:0]
		return
	}
	c.pend[to] = batch
}

func (c *Coalescer) flushPeer(to Addr, batch [][]byte) {
	n, err := SendBatch(c.tr, to, batch)
	c.sent += int64(n)
	if err != nil && c.sendErr == nil {
		c.sendErr = err
	}
}

// Flush sends every pending batch, returns the slabs to the pool, and
// reports how many frames this coalescer has handed to the network since
// the previous Flush (early per-peer flushes included) along with the
// first send error of the window. The coalescer is ready for the next
// window afterwards.
func (c *Coalescer) Flush() (int64, error) {
	for _, to := range c.order {
		if batch := c.pend[to]; len(batch) > 0 {
			c.flushPeer(to, batch)
		}
		delete(c.pend, to)
	}
	c.order = c.order[:0]
	for _, s := range c.slabs {
		PutBuf(s)
	}
	c.slabs = c.slabs[:0]
	if c.slab != nil {
		PutBuf(c.slab)
		c.slab = nil
		c.off = 0
	}
	sent, err := c.sent, c.sendErr
	c.sent, c.sendErr = 0, nil
	return sent, err
}
