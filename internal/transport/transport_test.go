package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// conformance exercises the Transport contract on a connected pair.
func conformance(t *testing.T, a, b Transport) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	msg := []byte("hello over the wire")
	if err := a.Send(b.LocalAddr(), msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	f, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(f.Data, msg) {
		t.Fatalf("recv data = %q, want %q", f.Data, msg)
	}
	if f.From != a.LocalAddr() {
		t.Fatalf("recv from = %q, want %q", f.From, a.LocalAddr())
	}
	// Reply to the sender address carried on the frame (how sessions
	// answer REQ and feedback frames).
	if err := b.Send(f.From, []byte("ack")); err != nil {
		t.Fatalf("reply: %v", err)
	}
	f.Release()
	if f.Data != nil {
		t.Fatal("release did not clear frame data")
	}
	g, err := a.Recv(ctx)
	if err != nil {
		t.Fatalf("recv reply: %v", err)
	}
	if string(g.Data) != "ack" {
		t.Fatalf("reply = %q", g.Data)
	}
	g.Release()

	if err := a.Send(b.LocalAddr(), make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized frame: err = %v", err)
	}

	// Cancellation unblocks Recv.
	short, scancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer scancel()
	if _, err := b.Recv(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled recv: err = %v", err)
	}

	// Close unblocks Recv with ErrClosed.
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after close: err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock Recv")
	}
	if err := b.Send(a.LocalAddr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: err = %v", err)
	}
}

func TestChanTransportConformance(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sw.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	conformance(t, a, b)
}

func TestUDPTransportConformance(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	conformance(t, a, b)
}

func TestSwitchUnknownPeer(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sw.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("nobody", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := sw.Attach("a"); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestSwitchLossIsDeterministic(t *testing.T) {
	counts := make([]int64, 2)
	for trial := range counts {
		sw, err := NewSwitch(SwitchConfig{LossRate: 0.5, Seed: 42, QueueDepth: 2000})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := sw.Attach("a")
		b, _ := sw.Attach("b")
		for i := 0; i < 1000; i++ {
			if err := a.Send(b.LocalAddr(), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		counts[trial] = sw.Lost()
		a.Close()
		b.Close()
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed, different loss: %d vs %d", counts[0], counts[1])
	}
	if counts[0] < 400 || counts[0] > 600 {
		t.Fatalf("loss count %d far from 500/1000", counts[0])
	}
}

func TestSwitchQueueOverflowDrops(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sw.Attach("a")
	b, _ := sw.Attach("b")
	defer a.Close()
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(b.LocalAddr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sw.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

func TestSwitchLatency(t *testing.T) {
	sw, err := NewSwitch(SwitchConfig{Latency: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sw.Attach("a")
	b, _ := sw.Attach("b")
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Send(b.LocalAddr(), []byte("delayed")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 20ms", elapsed)
	}
	sw.Wait()
}

func TestUDPRecvReusesPoolBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes reuse under the race detector")
	}
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Release after every Recv: the pool should stabilize on a small
	// working set, observable as a backing array coming back. The batch
	// reader re-arms its next buffer before the consumer releases the
	// current one, so a couple of buffers stay in flight — any repeat
	// counts, not specifically the first.
	seen := make(map[*byte]bool)
	reused := false
	for i := 0; i < 50; i++ {
		if err := a.Send(b.LocalAddr(), []byte(fmt.Sprintf("frame %d", i))); err != nil {
			t.Fatal(err)
		}
		f, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		p := &f.Data[:1][0]
		if seen[p] {
			reused = true
		}
		seen[p] = true
		f.Release()
	}
	if !reused {
		t.Fatal("pool never reused a receive buffer across 50 datagrams")
	}
}
