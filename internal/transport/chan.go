package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// SwitchConfig parameterizes the in-memory network.
type SwitchConfig struct {
	// LossRate drops each frame independently with this probability
	// (default 0: lossless).
	LossRate float64
	// Latency delays every delivery by a fixed duration (default 0:
	// synchronous handoff, fully deterministic).
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter) to each
	// delivery, drawn from the seeded rng. With Jitter > 0 frames overtake
	// each other, so tests can inject deterministic reordering on top of
	// loss and queue overflow. Requires Latency or Jitter-only operation;
	// default 0 (no reordering).
	Jitter time.Duration
	// QueueDepth bounds each port's inbound queue; frames arriving at a
	// full queue are dropped, modelling an overloaded receiver. Default 64.
	QueueDepth int
	// Seed drives the loss coin (default 1, deterministic).
	Seed int64
	// Clock schedules latency and jitter delays (default: the system
	// clock). Injecting a VClock makes delayed deliveries fire on virtual
	// time.
	Clock Clock
}

func (c *SwitchConfig) setDefaults() error {
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("transport: loss rate %v outside [0,1)", c.LossRate)
	}
	if c.Latency < 0 {
		return fmt.Errorf("transport: latency %v < 0", c.Latency)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("transport: jitter %v < 0", c.Jitter)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("transport: queue depth %d < 1", c.QueueDepth)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return nil
}

// Switch is an in-memory datagram network: a set of named ports with
// configurable loss, latency and queue depth. It is the deterministic
// test double for real sockets — the same node code runs over a Switch
// port or a UDPTransport.
type Switch struct {
	cfg SwitchConfig

	mu    sync.Mutex
	ports map[Addr]*ChanTransport
	rng   *rand.Rand

	lost    atomic.Int64 // frames dropped by the loss coin
	dropped atomic.Int64 // frames dropped at full queues
	timers  sync.WaitGroup
}

// NewSwitch builds an in-memory network.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Switch{
		cfg:   cfg,
		ports: make(map[Addr]*ChanTransport),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Lost returns the number of frames dropped by loss injection.
func (s *Switch) Lost() int64 { return s.lost.Load() }

// Dropped returns the number of frames dropped at full receive queues.
func (s *Switch) Dropped() int64 { return s.dropped.Load() }

// Attach creates a port with the given address and returns its transport.
func (s *Switch) Attach(addr Addr) (*ChanTransport, error) {
	if addr == "" {
		return nil, fmt.Errorf("transport: empty address")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ports[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already attached", addr)
	}
	t := &ChanTransport{
		sw:     s,
		addr:   addr,
		queue:  make(chan Frame, s.cfg.QueueDepth),
		closed: make(chan struct{}),
	}
	s.ports[addr] = t
	return t, nil
}

// Wait blocks until all in-flight latency timers have fired; tests call it
// before asserting on delivery counts.
func (s *Switch) Wait() { s.timers.Wait() }

func (s *Switch) deliver(from, to Addr, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooBig
	}
	s.mu.Lock()
	dst, ok := s.ports[to]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	drop := s.cfg.LossRate > 0 && s.rng.Float64() < s.cfg.LossRate
	delay := s.cfg.Latency
	if s.cfg.Jitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
	}
	s.mu.Unlock()
	if drop {
		s.lost.Add(1)
		return nil
	}
	// The receiver owns the frame; copy into a pooled buffer so senders may
	// reuse theirs. Release (or a drop on the way in) returns the buffer.
	bufp := GetBuf()
	data := (*bufp)[:copy(*bufp, frame)]
	f := Frame{From: from, Data: data, release: func() { PutBuf(bufp) }}
	if delay == 0 {
		s.push(dst, f)
		return nil
	}
	s.timers.Add(1)
	s.cfg.Clock.AfterFunc(delay, func() {
		defer s.timers.Done()
		s.push(dst, f)
	})
	return nil
}

func (s *Switch) push(dst *ChanTransport, f Frame) {
	select {
	case <-dst.closed:
		f.Release()
	case dst.queue <- f:
	default:
		s.dropped.Add(1)
		dst.dropped.Add(1)
		f.Release()
	}
}

// ChanTransport is one port of a Switch.
type ChanTransport struct {
	sw        *Switch
	addr      Addr
	queue     chan Frame
	closed    chan struct{}
	closeOnce sync.Once
	dropped   atomic.Int64
}

var _ Transport = (*ChanTransport)(nil)
var _ BatchRecver = (*ChanTransport)(nil)

// LocalAddr returns the port's address on the switch.
func (t *ChanTransport) LocalAddr() Addr { return t.addr }

// Dropped returns the number of frames dropped at this port's full queue
// (the receiver was overloaded).
func (t *ChanTransport) Dropped() int64 { return t.dropped.Load() }

// Send delivers one frame to the named peer through the switch, subject
// to the switch's loss, latency and queue bounds.
func (t *ChanTransport) Send(to Addr, frame []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	return t.sw.deliver(t.addr, to, frame)
}

// RecvBatch blocks for the first frame like Recv, then drains whatever
// else is already queued, up to len(out) — one wakeup per queued burst,
// mirroring the UDP fast path so session code consumes both through the
// same batch loop.
func (t *ChanTransport) RecvBatch(ctx context.Context, out []Frame) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	f, err := t.Recv(ctx)
	if err != nil {
		return 0, err
	}
	out[0] = f
	n := 1
	for n < len(out) {
		select {
		case f := <-t.queue:
			out[n] = f
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Recv returns the next queued frame.
func (t *ChanTransport) Recv(ctx context.Context) (Frame, error) {
	select {
	case f := <-t.queue:
		return f, nil
	default:
	}
	select {
	case f := <-t.queue:
		return f, nil
	case <-ctx.Done():
		return Frame{}, ctx.Err()
	case <-t.closed:
		return Frame{}, ErrClosed
	}
}

// Close detaches the port from the switch.
func (t *ChanTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.sw.mu.Lock()
		delete(t.sw.ports, t.addr)
		t.sw.mu.Unlock()
		// Return queued-but-undelivered frames to the pool.
		for {
			select {
			case f := <-t.queue:
				f.Release()
			default:
				return
			}
		}
	})
	return nil
}
