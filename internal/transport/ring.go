package transport

import "sync/atomic"

// spscRing is a fixed-capacity single-producer/single-consumer frame
// queue: one socket reader goroutine pushes, the transport's RecvBatch
// consumer pops. Head and tail are monotonically increasing positions
// masked into the buffer, each written by exactly one side, so the only
// synchronization is two atomic loads per operation — no locks on the
// per-frame path. The head/tail words live on separate cache lines so
// the producer and consumer cores do not false-share.
type spscRing struct {
	buf  []Frame
	mask uint64

	_    [56]byte // pad: keep head off the buf/mask line
	head atomic.Uint64
	_    [56]byte // pad: keep tail on its own line
	tail atomic.Uint64
}

// newSPSCRing builds a ring with the given capacity rounded up to a
// power of two (minimum 2).
func newSPSCRing(capacity int) *spscRing {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &spscRing{buf: make([]Frame, n), mask: n - 1}
}

// push appends one frame; it reports false when the ring is full (the
// producer decides whether to park or drop). Producer-side only.
func (r *spscRing) push(f Frame) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = f
	r.tail.Store(tail + 1)
	return true
}

// pop removes the oldest frame; ok is false when the ring is empty.
// Consumer-side only.
func (r *spscRing) pop() (Frame, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return Frame{}, false
	}
	f := r.buf[head&r.mask]
	r.buf[head&r.mask] = Frame{} // drop buffer references promptly
	r.head.Store(head + 1)
	return f, true
}

// drain pops everything currently queued, releasing each frame —
// shutdown cleanup, not a hot path.
func (r *spscRing) drain() {
	for {
		f, ok := r.pop()
		if !ok {
			return
		}
		f.Release()
	}
}
