package transport

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Clock abstracts the time source behind every timer the dissemination
// stack arms — session push ticks, META resend intervals, idle eviction,
// satiation backoff, fetch retries, switch latency injection. Production
// code runs on SystemClock; simulations inject a VClock so a minute of
// protocol time passes in milliseconds of wall time and every timer fires
// at an exact, reproducible virtual instant.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time on this clock since t.
	Since(t time.Time) time.Duration
	// NewTicker returns a ticker firing every d on this clock; d must be
	// positive. Like time.Ticker, a fire is dropped when the channel is
	// not being consumed.
	NewTicker(d time.Duration) Ticker
	// AfterFunc arranges for fn to run after d has elapsed on this clock.
	// VClock runs fn synchronously on the goroutine advancing the clock;
	// fn must not block.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Ticker is a Clock's periodic timer.
type Ticker interface {
	// C returns the delivery channel (capacity 1, as time.Ticker).
	C() <-chan time.Time
	// Stop ends the ticker; it does not close the channel.
	Stop()
}

// Timer is a Clock's one-shot timer, as armed by AfterFunc.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// systemClock is the process wall clock.
type systemClock struct{}

var sysClock Clock = systemClock{}

// SystemClock returns the real wall clock — the default Clock everywhere
// one is injectable.
func SystemClock() Clock { return sysClock }

func (systemClock) Now() time.Time                  { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration { return time.Since(t) }

func (systemClock) NewTicker(d time.Duration) Ticker { return sysTicker{time.NewTicker(d)} }

type sysTicker struct{ t *time.Ticker }

func (s sysTicker) C() <-chan time.Time { return s.t.C }
func (s sysTicker) Stop()               { s.t.Stop() }

func (systemClock) AfterFunc(d time.Duration, fn func()) Timer {
	return sysTimer{time.AfterFunc(d, fn)}
}

type sysTimer struct{ t *time.Timer }

func (s sysTimer) Stop() bool { return s.t.Stop() }

// VClockBase is where a fresh VClock starts. It is deliberately far from
// the zero time.Time: protocol code uses the zero value as "never"
// (metaAt, lastReq), and a clock starting at zero would alias it.
var VClockBase = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// VClock is a virtual clock: time stands still until Advance/AdvanceTo
// moves it, firing every ticker and AfterFunc deadline crossed, in
// deadline order. It implements Clock, so the whole dissemination stack
// runs on it unchanged; internal/simnet drives one from its discrete-event
// scheduler to give swarms virtual time.
//
// Timer callbacks run synchronously on the advancing goroutine. Ticker
// fires are offered to the consumer: with a zero sync grace the offer is
// non-blocking (exactly time.Ticker's drop semantics); with
// SetSyncGrace(d) the advancing goroutine waits up to d of real time for
// the consumer to take the tick, which lets a simulation hand control to
// the woken goroutine before virtual time moves again.
type VClock struct {
	mu     sync.Mutex
	now    time.Time
	timers vtimerHeap
	seq    uint64
	grace  time.Duration
}

// NewVClock returns a virtual clock frozen at VClockBase.
func NewVClock() *VClock {
	return &VClock{now: VClockBase}
}

// SetSyncGrace sets how long Advance waits, in real time, for a ticker
// consumer to accept each fire before dropping it (0 = non-blocking).
func (c *VClock) SetSyncGrace(d time.Duration) {
	c.mu.Lock()
	c.grace = d
	c.mu.Unlock()
}

// Now returns the current virtual time.
func (c *VClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *VClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// vtimer is one deadline on the virtual clock: a ticker (period > 0,
// fires on ch) or an AfterFunc (period 0, runs fn).
type vtimer struct {
	at      time.Time
	seq     uint64
	period  time.Duration
	ch      chan time.Time
	fn      func()
	stopped bool
	idx     int
}

type vtimerHeap []*vtimer

func (h vtimerHeap) Len() int { return len(h) }
func (h vtimerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h vtimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *vtimerHeap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *vtimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

// NewTicker returns a ticker firing every d of virtual time; it panics if
// d <= 0, like time.NewTicker.
func (c *VClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("transport: non-positive VClock ticker period")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &vtimer{at: c.now.Add(d), period: d, ch: make(chan time.Time, 1)}
	c.pushLocked(t)
	return &vTicker{c: c, t: t}
}

type vTicker struct {
	c *VClock
	t *vtimer
}

func (vt *vTicker) C() <-chan time.Time { return vt.t.ch }
func (vt *vTicker) Stop()               { vt.c.stop(vt.t) }

// AfterFunc arranges for fn to run when virtual time passes d from now.
// fn runs synchronously on the advancing goroutine and must not block.
func (c *VClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &vtimer{at: c.now.Add(d), fn: fn}
	c.pushLocked(t)
	return &vTimer{c: c, t: t}
}

type vTimer struct {
	c *VClock
	t *vtimer
}

func (vt *vTimer) Stop() bool { return vt.c.stop(vt.t) }

func (c *VClock) pushLocked(t *vtimer) {
	t.seq = c.seq
	c.seq++
	heap.Push(&c.timers, t)
}

func (c *VClock) stop(t *vtimer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	pending := t.idx >= 0
	if pending {
		heap.Remove(&c.timers, t.idx)
	}
	return pending
}

// NextDeadline returns the earliest pending timer deadline, if any. A
// discrete-event scheduler uses it to decide how far to advance.
func (c *VClock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) > 0 && c.timers[0].stopped {
		heap.Pop(&c.timers)
	}
	if len(c.timers) == 0 {
		return time.Time{}, false
	}
	return c.timers[0].at, true
}

// Advance moves virtual time forward by d; see AdvanceTo.
func (c *VClock) Advance(d time.Duration) { c.AdvanceTo(c.Now().Add(d)) }

// AdvanceTo moves virtual time to t (no-op if t is not after now), firing
// every deadline crossed in (deadline, registration) order. The clock
// reads t.Deadline time for each fire — a ticker firing at its deadline
// observes Now() == deadline — and lands on t when all due timers have
// run. Timer callbacks and ticker hand-offs happen with the clock's lock
// released, so fired code may freely read the clock or arm new timers
// (new deadlines at or before t fire within this same call).
func (c *VClock) AdvanceTo(t time.Time) {
	for {
		c.mu.Lock()
		for len(c.timers) > 0 && c.timers[0].stopped {
			heap.Pop(&c.timers)
		}
		if len(c.timers) == 0 || c.timers[0].at.After(t) {
			if t.After(c.now) {
				c.now = t
			}
			c.mu.Unlock()
			return
		}
		tm := heap.Pop(&c.timers).(*vtimer)
		if tm.at.After(c.now) {
			c.now = tm.at
		}
		now := c.now
		grace := c.grace
		if tm.period > 0 {
			// Re-arm before delivering so Stop from the consumer works and
			// the next deadline is visible to NextDeadline immediately.
			tm.at = tm.at.Add(tm.period)
			c.pushLocked(tm)
		}
		c.mu.Unlock()

		switch {
		case tm.fn != nil:
			tm.fn()
		case grace <= 0:
			select {
			case tm.ch <- now:
			default: // consumer busy: drop, like time.Ticker
			}
		default:
			// Sync grace: the buffered send succeeds instantly, so the
			// hand-off must additionally wait for the consumer to DRAIN
			// the tick — that receive is the proof the woken goroutine is
			// running, which is what lets a simulation scheduler trust
			// that the tick's work has started before time moves again.
			deadline := time.Now().Add(grace)
			select {
			case tm.ch <- now:
			default: // consumer still owes a drain from the last tick
			}
			for len(tm.ch) > 0 && time.Now().Before(deadline) {
				runtime.Gosched()
				time.Sleep(5 * time.Microsecond)
			}
		}
	}
}
