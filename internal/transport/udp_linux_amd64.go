//go:build linux && amd64

package transport

// Syscall numbers for the mmsg batch calls: the frozen syscall package
// predates sendmmsg (Linux 3.0), so the numbers are pinned here per
// architecture.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
