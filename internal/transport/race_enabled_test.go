//go:build race

package transport

// raceEnabled reports whether the race detector is on; sync.Pool
// deliberately randomizes reuse under the detector, so pool-identity
// assertions are skipped.
const raceEnabled = true
