package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSystemClockBasics(t *testing.T) {
	c := SystemClock()
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatalf("Since went backwards")
	}
	var fired atomic.Bool
	tm := c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	defer tm.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("AfterFunc never fired")
		}
		time.Sleep(time.Millisecond)
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatalf("ticker never ticked")
	}
}

func TestVClockFrozenUntilAdvanced(t *testing.T) {
	c := NewVClock()
	t0 := c.Now()
	if !t0.Equal(VClockBase) {
		t.Fatalf("fresh VClock at %v, want %v", t0, VClockBase)
	}
	time.Sleep(5 * time.Millisecond)
	if !c.Now().Equal(t0) {
		t.Fatalf("virtual time moved without Advance")
	}
	c.Advance(3 * time.Second)
	if got := c.Since(t0); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestVClockAfterFuncOrderAndStop(t *testing.T) {
	c := NewVClock()
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	tm := c.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	if !tm.Stop() {
		t.Fatalf("Stop of pending timer reported not pending")
	}
	if tm.Stop() {
		t.Fatalf("second Stop reported pending")
	}
	c.Advance(time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("fire order %v, want [1 3]", order)
	}
	// Same-deadline timers fire in registration order.
	order = nil
	c.AfterFunc(time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("same-deadline order %v, want [1 2]", order)
	}
}

func TestVClockAfterFuncSeesDeadlineNow(t *testing.T) {
	c := NewVClock()
	var at time.Time
	c.AfterFunc(10*time.Millisecond, func() { at = c.Now() })
	c.Advance(time.Second)
	if want := VClockBase.Add(10 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw Now = %v, want %v", at, want)
	}
	if !c.Now().Equal(VClockBase.Add(time.Second)) {
		t.Fatalf("clock did not land on the advance target")
	}
}

func TestVClockChainedAfterFunc(t *testing.T) {
	// A callback arming a new deadline inside the advance window fires
	// within the same AdvanceTo.
	c := NewVClock()
	var hops int
	var arm func()
	arm = func() {
		hops++
		if hops < 5 {
			c.AfterFunc(time.Millisecond, arm)
		}
	}
	c.AfterFunc(time.Millisecond, arm)
	c.Advance(time.Second)
	if hops != 5 {
		t.Fatalf("chained AfterFunc hops = %d, want 5", hops)
	}
}

func TestVClockTicker(t *testing.T) {
	c := NewVClock()
	tk := c.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	c.Advance(10 * time.Millisecond)
	select {
	case at := <-tk.C():
		if want := VClockBase.Add(10 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("tick at %v, want %v", at, want)
		}
	default:
		t.Fatalf("no tick after one period")
	}
	// Unconsumed ticks are dropped, not queued (time.Ticker semantics).
	c.Advance(50 * time.Millisecond)
	<-tk.C()
	select {
	case <-tk.C():
		t.Fatalf("ticker queued more than one fire")
	default:
	}
	tk.Stop()
	c.Advance(time.Second)
	select {
	case <-tk.C():
		t.Fatalf("stopped ticker fired")
	default:
	}
}

func TestVClockNextDeadline(t *testing.T) {
	c := NewVClock()
	if _, ok := c.NextDeadline(); ok {
		t.Fatalf("empty clock reported a deadline")
	}
	tk := c.NewTicker(20 * time.Millisecond)
	c.AfterFunc(50*time.Millisecond, func() {})
	at, ok := c.NextDeadline()
	if !ok || !at.Equal(VClockBase.Add(20*time.Millisecond)) {
		t.Fatalf("NextDeadline = %v %v, want ticker deadline", at, ok)
	}
	tk.Stop()
	at, ok = c.NextDeadline()
	if !ok || !at.Equal(VClockBase.Add(50*time.Millisecond)) {
		t.Fatalf("NextDeadline after Stop = %v %v, want AfterFunc deadline", at, ok)
	}
}

func TestVClockSyncGraceHandsOffTicks(t *testing.T) {
	c := NewVClock()
	c.SetSyncGrace(time.Second)
	tk := c.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	got := make(chan time.Time)
	go func() {
		for i := 0; i < 3; i++ {
			got <- <-tk.C()
		}
	}()
	done := make(chan struct{})
	go func() {
		c.Advance(30 * time.Millisecond) // three periods, each handed off
		close(done)
	}()
	for i := 1; i <= 3; i++ {
		select {
		case at := <-got:
			if want := VClockBase.Add(time.Duration(i) * 10 * time.Millisecond); !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("tick %d never handed off", i)
		}
	}
	<-done
}
