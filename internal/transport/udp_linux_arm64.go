//go:build linux && arm64

package transport

// Syscall numbers for the mmsg batch calls (asm-generic table).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
