//go:build !(linux && (amd64 || arm64))

package transport

// udp_fallback.go keeps UDPTransport portable: platforms without the
// recvmmsg/sendmmsg fast path (darwin, windows, 32-bit linux, ...) run
// the direct per-frame syscall path in udp.go. SendBatch/RecvBatch still
// exist — they degrade to per-frame loops with identical semantics, so
// callers written against the batch surface run unchanged.

import (
	"context"
	"syscall"
)

const batchSupported = false

type batchState struct{}

func reusePortControl(cfg UDPConfig) func(network, address string, c syscall.RawConn) error {
	return nil
}

func (t *UDPTransport) initBatch() error    { return nil }
func (t *UDPTransport) batchEnabled() bool  { return false }
func (t *UDPTransport) closeBatch()         {}

func (t *UDPTransport) batchInfo() (enabled, gso, gro bool, readers int) {
	return false, false, false, 1
}

func (t *UDPTransport) recvBatchRings(ctx context.Context, out []Frame) (int, error) {
	panic("transport: batch rings unavailable on this platform")
}

func (t *UDPTransport) sendBatchMmsg(to Addr, frames [][]byte) (int, error) {
	panic("transport: sendmmsg unavailable on this platform")
}
