package packet

import "testing"

// Allocation budgets for the wire codec, asserted so hot-path regressions
// fail loudly instead of showing up as a throughput drift. Budgets are
// fixed ceilings, not measurements: raising one requires justifying the
// regression.

func allocPacket() *Packet {
	p := Native(256, 9, make([]byte, 512))
	p.Object = NewObjectID([]byte("alloc test"))
	return p
}

func TestMarshalAllocBudget(t *testing.T) {
	p := allocPacket()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Marshal(p); err != nil {
			t.Fatal(err)
		}
	})
	// One backing buffer; everything else is appended in place.
	if allocs > 1 {
		t.Errorf("Marshal allocates %.1f per call, budget 1", allocs)
	}
}

func TestAppendWireDoesNotAllocate(t *testing.T) {
	p := allocPacket()
	buf := make([]byte, 0, ObjectWireSize(p.K(), len(p.Payload)))
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendWire(buf[:0], p)
	})
	if allocs > 0 {
		t.Errorf("AppendWire into a sized buffer allocates %.1f per call, want 0", allocs)
	}
}

func TestParseWireDoesNotAllocate(t *testing.T) {
	data, err := Marshal(allocPacket())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ParseWire(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("ParseWire allocates %.1f per call, want 0", allocs)
	}
}

func TestUnmarshalAllocBudget(t *testing.T) {
	data, err := Marshal(allocPacket())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Unmarshal(data); err != nil {
			t.Fatal(err)
		}
	})
	// Reader scaffolding + header buffer + vector (struct + words) +
	// vector bytes + packet + payload.
	if allocs > 8 {
		t.Errorf("Unmarshal allocates %.1f per call, budget 8", allocs)
	}
}
