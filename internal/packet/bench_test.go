package packet

import (
	"fmt"
	"testing"
)

// benchPacket builds a degree-d packet over k natives with an m-byte
// payload, optionally tagged with an object ID (the v2 wire format used by
// the session layer).
func benchPacket(k, d, m int, tagged bool) *Packet {
	p := New(k, m)
	for i := 0; i < d; i++ {
		p.Vec.Set(i * (k / d))
	}
	for i := range p.Payload {
		p.Payload[i] = byte(i)
	}
	if tagged {
		p.Object = NewObjectID([]byte("bench object"))
	}
	return p
}

func benchShapes() []struct {
	name    string
	k, d, m int
	tagged  bool
} {
	return []struct {
		name    string
		k, d, m int
		tagged  bool
	}{
		{"k256_m1024_v1", 256, 8, 1024, false},
		{"k256_m1024_v2", 256, 8, 1024, true},
		{"k2048_m1024_v2", 2048, 16, 1024, true},
		{"k256_m0_v1", 256, 8, 0, false},
	}
}

func BenchmarkMarshal(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(s.name, func(b *testing.B) {
			p := benchPacket(s.k, s.d, s.m, s.tagged)
			data, err := Marshal(p)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Marshal(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(s.name, func(b *testing.B) {
			data, err := Marshal(benchPacket(s.k, s.d, s.m, s.tagged))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Unmarshal(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadHeader(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(s.name, func(b *testing.B) {
			data, err := Marshal(benchPacket(s.k, s.d, s.m, s.tagged))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := &sliceReader{data: data}
				if _, err := ReadHeader(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func ExampleObjectID_String() {
	fmt.Println(NewObjectID([]byte("hello")).String())
	// Output: 2cf24dba5fb0a30e26e83b2ac5b9e29e
}
