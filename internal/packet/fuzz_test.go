package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the wire decoder against malformed input: it must
// never panic, and every accepted packet must re-encode to the same bytes
// (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: valid packets of assorted shapes plus mutations.
	seeds := []*Packet{
		Native(8, 3, []byte{1, 2, 3}),
		Native(64, 0, nil),
		New(2048, 0),
	}
	big := New(333, 17)
	for i := 0; i < 333; i += 7 {
		big.Vec.Set(i)
	}
	seeds = append(seeds, big)
	tagged := Native(16, 2, []byte{9, 9})
	tagged.Object = NewObjectID([]byte("fuzz"))
	seeds = append(seeds, tagged)
	for _, p := range seeds {
		data, err := Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{'L', 'T', 1, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := Marshal(p)
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding: %d in, %d out", len(data), len(out))
		}
	})
}

// FuzzReadHeader checks the streaming header parser on arbitrary prefixes.
func FuzzReadHeader(f *testing.F) {
	data, err := Marshal(Native(128, 9, make([]byte, 32)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h.K < 1 || h.M < 0 || h.Vec == nil || h.Vec.Len() != h.K {
			t.Fatalf("accepted inconsistent header %+v", h)
		}
	})
}
