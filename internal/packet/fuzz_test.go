package packet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ltnc/internal/bitvec"
)

// FuzzUnmarshal hardens the wire decoder against malformed input: it must
// never panic, and every accepted packet must re-encode to the same bytes
// (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: valid packets of assorted shapes plus mutations.
	seeds := []*Packet{
		Native(8, 3, []byte{1, 2, 3}),
		Native(64, 0, nil),
		New(2048, 0),
	}
	big := New(333, 17)
	for i := 0; i < 333; i += 7 {
		big.Vec.Set(i)
	}
	seeds = append(seeds, big)
	tagged := Native(16, 2, []byte{9, 9})
	tagged.Object = NewObjectID([]byte("fuzz"))
	seeds = append(seeds, tagged)
	gen := Native(32, 5, []byte{7, 7, 7})
	gen.Object = NewObjectID([]byte("fuzz gen"))
	gen.Generation = 3
	gen.Generations = 8
	seeds = append(seeds, gen)
	for _, p := range seeds {
		data, err := Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{'L', 'T', 1, 0, 0, 0, 0, 0})
	// v2 content-ID edge cases: truncated inside the object ID, a zero ID
	// (must be rejected — zero means "no object" and is v1-only), and a v2
	// header whose announced sizes overflow the actual frame.
	v2, err := Marshal(tagged)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2[:headerFixed+3])            // cut mid-object-ID
	f.Add(v2[:headerFixed+objectIDSize]) // object ID present, vector missing
	zeroID := append([]byte(nil), v2...)
	for i := 0; i < objectIDSize; i++ {
		zeroID[headerFixed+i] = 0
	}
	f.Add(zeroID)
	oversized := append([]byte(nil), v2...)
	oversized[8], oversized[9] = 0xff, 0xff // k beyond the frame
	f.Add(oversized)
	// v3 generation-field edge cases: the generation id and count live at
	// fixed offsets ([4:8] and [16:20]), so mutations target them exactly —
	// id ≥ count (must be rejected), count 0 and 1 (gen-absent values are
	// v1/v2-only, a v3 frame carrying them is non-canonical), a count over
	// the sanity bound, and a v3 header truncated inside the count.
	v3, err := Marshal(gen)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v3)
	genTooBig := append([]byte(nil), v3...)
	genTooBig[7] = 0xff // generation id 255 ≥ G=8
	f.Add(genTooBig)
	for _, count := range []uint32{0, 1, 1 << 21} {
		mut := append([]byte(nil), v3...)
		binary.BigEndian.PutUint32(mut[headerFixed:], count)
		f.Add(mut)
	}
	f.Add(v3[:headerFixed+2]) // cut mid-generation-count

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if p.Generations >= 2 && p.Generation >= p.Generations {
			t.Fatalf("accepted generation %d of %d", p.Generation, p.Generations)
		}
		out, err := Marshal(p)
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding: %d in, %d out", len(data), len(out))
		}
	})
}

// FuzzParseWire cross-checks the zero-copy wire parser against the
// io.Reader decoder: both must accept exactly the same frames, and on
// acceptance the views must describe the same packet.
func FuzzParseWire(f *testing.F) {
	tagged := Native(32, 4, []byte{1, 2, 3, 4})
	tagged.Object = NewObjectID([]byte("wire"))
	gen := Native(16, 1, []byte{5})
	gen.Object = NewObjectID([]byte("wire gen"))
	gen.Generation = 1
	gen.Generations = 4
	for _, p := range []*Packet{Native(8, 3, []byte{1, 2, 3}), tagged, gen, New(300, 0)} {
		data, err := Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		wv, errView := ParseWire(data)
		p, errRead := Unmarshal(data)
		if (errView == nil) != (errRead == nil) {
			t.Fatalf("parser disagreement: ParseWire err=%v, Unmarshal err=%v", errView, errRead)
		}
		if errView != nil {
			return
		}
		if wv.K != p.K() || wv.M != len(p.Payload) || wv.Object != p.Object ||
			wv.Generation != p.Generation || wv.Generations != p.Generations {
			t.Fatalf("views disagree: %+v vs %v", wv, p)
		}
		vec := bitvec.New(wv.K)
		if err := vec.UnmarshalInto(wv.VecBytes(data)); err != nil {
			t.Fatalf("accepted vector bytes do not unmarshal: %v", err)
		}
		if !vec.Equal(p.Vec) {
			t.Fatal("code vectors disagree between parsers")
		}
		if wv.M > 0 && !bytes.Equal(wv.PayloadBytes(data), p.Payload) {
			t.Fatal("payloads disagree between parsers")
		}
	})
}

// FuzzReadHeader checks the streaming header parser on arbitrary prefixes.
func FuzzReadHeader(f *testing.F) {
	data, err := Marshal(Native(128, 9, make([]byte, 32)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h.K < 1 || h.M < 0 || h.Vec == nil || h.Vec.Len() != h.K {
			t.Fatalf("accepted inconsistent header %+v", h)
		}
	})
}
