package packet

import (
	"bytes"
	"errors"
	"testing"
)

func genPacket(t *testing.T) *Packet {
	t.Helper()
	p := Native(24, 7, []byte{1, 2, 3, 4})
	p.Object = NewObjectID([]byte("v3 object"))
	p.Generation = 5
	p.Generations = 8
	return p
}

// TestWireV3RoundTrip checks that a generation-coded packet survives both
// codecs (io.Reader and zero-copy) with generation id, count, object ID
// and payload intact, at the size the helpers predict.
func TestWireV3RoundTrip(t *testing.T) {
	p := genPacket(t)
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := GenWireSize(p.K(), len(p.Payload)); len(data) != want {
		t.Fatalf("v3 wire size %d, want %d", len(data), want)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
	if got.Generation != 5 || got.Generations != 8 {
		t.Fatalf("generation fields lost: gen=%d gens=%d", got.Generation, got.Generations)
	}
	wv, err := ParseWire(data)
	if err != nil {
		t.Fatal(err)
	}
	if wv.Version != wireV3 || wv.Generation != 5 || wv.Generations != 8 || wv.Object != p.Object {
		t.Fatalf("wire view mismatch: %+v", wv)
	}
	if !bytes.Equal(wv.PayloadBytes(data), p.Payload) {
		t.Fatal("payload bytes differ")
	}
}

// TestWireV3HeaderIndependentOfTotalK pins the property generations buy:
// the v3 header depends only on the per-generation code length, so two
// objects whose totals differ by 64x serialize identical-size headers as
// long as k/G matches — while a gen-absent v2 header over the large total
// would be far bigger.
func TestWireV3HeaderIndependentOfTotalK(t *testing.T) {
	const kPer = 256
	small := GenHeaderSize(kPer) // e.g. total k = 512, G = 2
	large := GenHeaderSize(kPer) // e.g. total k = 32768, G = 128
	if small != large {
		t.Fatalf("gen header size varies: %d vs %d", small, large)
	}
	if flat := ObjectHeaderSize(32768); flat <= GenHeaderSize(kPer) {
		t.Fatalf("v2 header over total k (%dB) not larger than v3 over k/G (%dB)",
			flat, GenHeaderSize(kPer))
	}
}

// TestWireV3Validation exercises the generation-field boundary checks on
// both parsers and the writer.
func TestWireV3Validation(t *testing.T) {
	p := genPacket(t)
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), data...)
		mutate(c)
		return c
	}
	cases := map[string][]byte{
		"generation id at count": corrupt(func(b []byte) { b[7] = 8 }), // gen 8 of G=8
		"generation id past":     corrupt(func(b []byte) { b[7] = 99 }),
		"count zero":             corrupt(func(b []byte) { b[headerFixed+3] = 0 }),
		"count one (gen-absent)": corrupt(func(b []byte) { b[headerFixed+3] = 1 }),
		"count over bound":       corrupt(func(b []byte) { b[headerFixed] = 0xff }),
	}
	for name, frame := range cases {
		if _, err := Unmarshal(frame); !errors.Is(err, ErrBadGeneration) && !errors.Is(err, ErrBadPacket) {
			t.Errorf("%s: Unmarshal err = %v, want ErrBadGeneration", name, err)
		}
		if _, err := ParseWire(frame); err == nil {
			t.Errorf("%s: ParseWire accepted the frame", name)
		}
	}
	// The specific sentinel (and its parent) must classify.
	bad := corrupt(func(b []byte) { b[7] = 99 })
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadGeneration) || !errors.Is(err, ErrBadPacket) {
		t.Fatalf("err = %v, want ErrBadGeneration wrapping ErrBadPacket", err)
	}

	// Writers refuse inconsistent generation structure outright.
	p.Generation = 8
	if _, err := Marshal(p); !errors.Is(err, ErrBadGeneration) {
		t.Fatalf("Marshal of gen 8/8 err = %v, want ErrBadGeneration", err)
	}
	if err := WriteHeader(&bytes.Buffer{}, p); !errors.Is(err, ErrBadGeneration) {
		t.Fatalf("WriteHeader of gen 8/8 err = %v, want ErrBadGeneration", err)
	}
}

// TestWireV3BackwardCompat: gen-absent v1/v2 frames must keep parsing
// exactly as before — Generations reports 0 — and a Generations value of
// 1 is the same unstructured form, encoding as v1/v2, never v3.
func TestWireV3BackwardCompat(t *testing.T) {
	plain := Native(16, 3, []byte{1, 2, 3})
	plain.Generation = 9 // legacy streams stamped generation ids on v1 frames
	data, err := Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if data[2] != wireV1 {
		t.Fatalf("gen-absent packet encoded as version %d", data[2])
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generations != 0 || got.Generation != 9 {
		t.Fatalf("legacy fields mishandled: gen=%d gens=%d", got.Generation, got.Generations)
	}

	one := genPacket(t)
	one.Generation = 0
	one.Generations = 1
	data, err = Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	if data[2] != wireV2 {
		t.Fatalf("G=1 packet encoded as version %d, want v2", data[2])
	}
	got, err = Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(one) {
		t.Fatal("G=1 packet does not compare equal to its gen-absent round trip")
	}
}
