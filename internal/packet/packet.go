// Package packet defines the encoded-packet representation shared by all
// coding schemes (LT, LTNC, RLNC) and its wire format.
//
// A packet carries a code vector — a GF(2) bitmap over the k native
// packets, "included in the headers of the packets" as in the paper — and
// an m-byte payload equal to the XOR of the native payloads selected by
// the vector. The wire format places the code vector *before* the payload
// so that a receiver can run redundancy detection on the header alone and
// abort the transfer of a non-innovative payload (the paper's binary
// feedback channel, Section III-C-2).
package packet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"ltnc/internal/bitvec"
	"ltnc/internal/opcount"
)

// ObjectID identifies a content object when many objects are multiplexed
// over one transport (the session layer's 16-byte content ID). The zero
// value means "no object": single-object streams and the original v1 wire
// format carry no ID.
type ObjectID [16]byte

// NewObjectID derives a content ID from the object bytes (truncated
// SHA-256), so that independently-started sources of the same content
// converge on the same sessions.
func NewObjectID(content []byte) ObjectID {
	var id ObjectID
	sum := sha256.Sum256(content)
	copy(id[:], sum[:])
	return id
}

// IsZero reports whether id is the zero ("no object") ID.
func (id ObjectID) IsZero() bool { return id == ObjectID{} }

// String renders the ID as lowercase hex.
func (id ObjectID) String() string { return hex.EncodeToString(id[:]) }

// ParseObjectID parses the 32-hex-digit form produced by String.
func ParseObjectID(s string) (ObjectID, error) {
	var id ObjectID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		return id, fmt.Errorf("packet: object id %q is not %d hex bytes", s, len(id))
	}
	copy(id[:], b)
	return id, nil
}

// Packet is one encoded packet: the GF(2) combination Vec of native
// packets together with the combined Payload. Payload may be nil in
// control-plane-only simulations, where only code vectors matter.
type Packet struct {
	Vec     *bitvec.Vector
	Payload []byte
	// Generation identifies the coding generation the packet belongs to
	// when content is split into generations (0 when unused).
	Generation uint32
	// Generations is the total number of coding generations of the
	// packet's object. 0 and 1 both mean "not generation-structured"
	// (the packet's vector spans the whole object) and encode as wire
	// v1/v2; values ≥ 2 mark a generation-coded object — the vector
	// spans only the k/G natives of generation Generation — and encode
	// as wire v3, which carries the count so relays can size their
	// per-generation decode state from DATA headers alone.
	Generations uint32
	// Object identifies the content object the packet belongs to when
	// several objects share a transport (zero when unused; zero-Object
	// packets marshal to the v1 wire format).
	Object ObjectID
}

// New returns an all-zero packet over k native packets with an m-byte
// payload buffer (no buffer if m == 0).
func New(k, m int) *Packet {
	p := &Packet{Vec: bitvec.New(k)}
	if m > 0 {
		p.Payload = make([]byte, m)
	}
	return p
}

// Native returns the degree-1 packet for native index i carrying payload.
// The payload is copied so the caller keeps ownership of data.
func Native(k, i int, data []byte) *Packet {
	p := &Packet{Vec: bitvec.Single(k, i)}
	if len(data) > 0 {
		p.Payload = append([]byte(nil), data...)
	}
	return p
}

// K returns the code length (number of native packets).
func (p *Packet) K() int { return p.Vec.Len() }

// Degree returns the number of native packets combined in p.
func (p *Packet) Degree() int { return p.Vec.PopCount() }

// IsZero reports whether the packet combines no native packets.
func (p *Packet) IsZero() bool { return p.Vec.IsZero() }

// NativeIndex returns the native index of a degree-1 packet and true, or
// (-1, false) if the packet's degree is not 1.
func (p *Packet) NativeIndex() (int, bool) {
	i := p.Vec.LowestSet()
	if i < 0 || p.Vec.NextSet(i+1) >= 0 {
		return -1, false
	}
	return i, true
}

// Xor sets p = p ⊕ o, updating both the code vector and the payload, and
// records the control-word and data-byte costs on c (which may be nil).
// It returns p.
func (p *Packet) Xor(o *Packet, c *opcount.Counter, control, data opcount.Phase) *Packet {
	c.Add(control, opcount.WordOps(p.K(), 1))
	p.Vec.Xor(o.Vec)
	if len(p.Payload) > 0 && len(o.Payload) > 0 {
		c.Add(data, bitvec.XorBytes(p.Payload, o.Payload))
	}
	return p
}

// Clone returns a deep copy of p.
func (p *Packet) Clone() *Packet {
	q := &Packet{Vec: p.Vec.Clone(), Generation: p.Generation, Generations: p.Generations, Object: p.Object}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

// genStructured reports whether the packet belongs to a generation-coded
// object (Generations ≥ 2; 0 and 1 are the equivalent unstructured forms).
func genStructured(gens uint32) bool { return gens >= 2 }

// Equal reports whether two packets have identical vectors, payloads,
// generation structure and object ID. Generations 0 and 1 compare equal:
// both mean "not generation-structured" and share a wire encoding.
func (p *Packet) Equal(o *Packet) bool {
	if !p.Vec.Equal(o.Vec) || p.Generation != o.Generation || p.Object != o.Object {
		return false
	}
	if genStructured(p.Generations) != genStructured(o.Generations) {
		return false
	}
	if genStructured(p.Generations) && p.Generations != o.Generations {
		return false
	}
	if len(p.Payload) != len(o.Payload) {
		return false
	}
	for i := range p.Payload {
		if p.Payload[i] != o.Payload[i] {
			return false
		}
	}
	return true
}

// String renders the packet as its support set, e.g. "{1,3}/8+256B".
func (p *Packet) String() string {
	return fmt.Sprintf("%v+%dB", p.Vec, len(p.Payload))
}

// Wire format (version 1)
//
//	magic   "LT"        2 bytes
//	version 0x01        1 byte
//	flags               1 byte (reserved, 0)
//	generation          4 bytes big-endian
//	k                   4 bytes big-endian
//	m                   4 bytes big-endian
//	code vector         ceil(k/8) bytes
//	payload             m bytes
//
// Version 2 inserts a 16-byte object ID between m and the code vector, so
// that many content objects can share one transport. The ID must be
// non-zero: a zero ID means "no object" and must be encoded as version 1,
// which keeps the encoding canonical and v1 readers working on
// single-object streams. Writers pick the version from Packet.Object;
// readers accept both.
//
// Version 3 is the generation-coded form: it inserts a 4-byte generation
// count (G ≥ 2) between m and the object ID, so receivers can size all G
// per-generation decode states from any DATA header without waiting for
// out-of-band metadata. In a v3 header k is the PER-GENERATION code
// length: the vector spans only the k natives of the generation named by
// the generation field, which is what keeps headers O(k/G) no matter how
// large the object grows. A packet with Generations ≤ 1 must encode as
// v1/v2 (gen-absent), which keeps the encoding canonical; readers accept
// all three versions.
const (
	wireV1         = 0x01
	wireV2         = 0x02
	wireV3         = 0x03
	headerFixed    = 2 + 1 + 1 + 4 + 4 + 4
	genCountSize   = 4
	objectIDSize   = 16
	maxWireK       = 1 << 24 // sanity bound against corrupt headers
	maxWirePayload = 1 << 30
	maxWireGens    = 1 << 20 // sanity bound on the generation count
)

// MaxGenerations is the largest generation count a v3 header may carry;
// larger values are rejected as corrupt.
const MaxGenerations = maxWireGens

var wireMagic = [2]byte{'L', 'T'}

// Errors returned by the wire codec. ErrBadPacket is the parent of every
// decoding failure: errors.Is(err, ErrBadPacket) matches ErrBadMagic,
// ErrBadVersion and ErrCorrupt alike, so API boundaries can classify
// malformed input without enumerating the specific causes.
var (
	ErrBadPacket  = errors.New("packet: bad packet")
	ErrBadMagic   = fmt.Errorf("%w: bad magic", ErrBadPacket)
	ErrBadVersion = fmt.Errorf("%w: unsupported version", ErrBadPacket)
	ErrCorrupt    = fmt.Errorf("%w: corrupt header", ErrBadPacket)
	// ErrBadGeneration marks an inconsistent generation structure: a v3
	// header whose generation id is outside [0, G) or whose count is out
	// of bounds, and — at the layers above — a packet routed at a coder
	// whose generation geometry does not match. It wraps ErrBadPacket so
	// boundary classification by the parent sentinel keeps working.
	ErrBadGeneration = fmt.Errorf("%w: bad generation", ErrBadPacket)
)

// Header is the decoded fixed-size prefix plus code vector of a packet on
// the wire. Receivers inspect it (degree, redundancy check) before
// deciding whether to read the payload.
type Header struct {
	K          int
	M          int
	Generation uint32
	// Generations is the object's generation count from a v3 header
	// (≥ 2); 0 for gen-absent v1/v2 headers.
	Generations uint32
	Object      ObjectID
	Vec         *bitvec.Vector
}

// Degree returns the degree announced by the header's code vector.
func (h Header) Degree() int { return h.Vec.PopCount() }

// HeaderSize returns the number of bytes a v1 header occupies on the wire
// for code length k.
func HeaderSize(k int) int { return headerFixed + (k+7)/8 }

// ObjectHeaderSize returns the number of bytes a v2 (object-tagged) header
// occupies on the wire for code length k.
func ObjectHeaderSize(k int) int { return headerFixed + objectIDSize + (k+7)/8 }

// GenHeaderSize returns the number of bytes a v3 (generation-coded)
// header occupies on the wire for PER-GENERATION code length kPer. It
// depends only on kPer, never on the object's total code length — the
// O(k/G) header property generations buy.
func GenHeaderSize(kPer int) int { return headerFixed + genCountSize + objectIDSize + (kPer+7)/8 }

// WireSize returns the total on-wire size of a v1 packet with code length
// k and payload size m.
func WireSize(k, m int) int { return HeaderSize(k) + m }

// ObjectWireSize returns the total on-wire size of a v2 (object-tagged)
// packet with code length k and payload size m.
func ObjectWireSize(k, m int) int { return ObjectHeaderSize(k) + m }

// GenWireSize returns the total on-wire size of a v3 (generation-coded)
// packet with per-generation code length kPer and payload size m.
func GenWireSize(kPer, m int) int { return GenHeaderSize(kPer) + m }

// WriteHeader writes the header of p to w: version 3 when the packet is
// generation-coded (Generations ≥ 2), version 2 when it is object-tagged,
// version 1 otherwise.
func WriteHeader(w io.Writer, p *Packet) error {
	if genStructured(p.Generations) && p.Generation >= p.Generations {
		return fmt.Errorf("%w: generation %d of %d", ErrBadGeneration, p.Generation, p.Generations)
	}
	buf := make([]byte, headerFixed, headerFixed+genCountSize+objectIDSize)
	buf[0], buf[1] = wireMagic[0], wireMagic[1]
	buf[2] = wireV1
	buf[3] = 0
	binary.BigEndian.PutUint32(buf[4:], p.Generation)
	binary.BigEndian.PutUint32(buf[8:], uint32(p.K()))
	binary.BigEndian.PutUint32(buf[12:], uint32(len(p.Payload)))
	switch {
	case genStructured(p.Generations):
		buf[2] = wireV3
		buf = binary.BigEndian.AppendUint32(buf, p.Generations)
		buf = append(buf, p.Object[:]...)
	case !p.Object.IsZero():
		buf[2] = wireV2
		buf = append(buf, p.Object[:]...)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("packet: write header: %w", err)
	}
	vec, err := p.Vec.MarshalBinary()
	if err != nil {
		return fmt.Errorf("packet: marshal vector: %w", err)
	}
	if _, err := w.Write(vec); err != nil {
		return fmt.Errorf("packet: write vector: %w", err)
	}
	return nil
}

// WritePayload writes the payload of p to w. Call it after WriteHeader
// once the receiver has accepted the transfer.
func WritePayload(w io.Writer, p *Packet) error {
	if len(p.Payload) == 0 {
		return nil
	}
	if _, err := w.Write(p.Payload); err != nil {
		return fmt.Errorf("packet: write payload: %w", err)
	}
	return nil
}

// Write writes the complete packet (header then payload) to w.
func Write(w io.Writer, p *Packet) error {
	if err := WriteHeader(w, p); err != nil {
		return err
	}
	return WritePayload(w, p)
}

// ReadHeader reads and validates a packet header from r.
func ReadHeader(r io.Reader) (Header, error) {
	var h Header
	buf := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("packet: read header: %w", err)
	}
	if buf[0] != wireMagic[0] || buf[1] != wireMagic[1] {
		return h, ErrBadMagic
	}
	version := buf[2]
	if version != wireV1 && version != wireV2 && version != wireV3 {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	h.Generation = binary.BigEndian.Uint32(buf[4:])
	k := binary.BigEndian.Uint32(buf[8:])
	m := binary.BigEndian.Uint32(buf[12:])
	if k == 0 || k > maxWireK || m > maxWirePayload {
		return h, fmt.Errorf("%w: k=%d m=%d", ErrCorrupt, k, m)
	}
	h.K, h.M = int(k), int(m)
	if version == wireV3 {
		var gb [genCountSize]byte
		if _, err := io.ReadFull(r, gb[:]); err != nil {
			return h, fmt.Errorf("packet: read generation count: %w", err)
		}
		h.Generations = binary.BigEndian.Uint32(gb[:])
		if h.Generations < 2 || h.Generations > maxWireGens {
			return h, fmt.Errorf("%w: v3 header with G=%d", ErrBadGeneration, h.Generations)
		}
		if h.Generation >= h.Generations {
			return h, fmt.Errorf("%w: generation %d of %d", ErrBadGeneration, h.Generation, h.Generations)
		}
	}
	if version == wireV2 || version == wireV3 {
		if _, err := io.ReadFull(r, h.Object[:]); err != nil {
			return h, fmt.Errorf("packet: read object id: %w", err)
		}
		if version == wireV2 && h.Object.IsZero() {
			return h, fmt.Errorf("%w: v2 header with zero object id", ErrCorrupt)
		}
	}
	vecBytes := make([]byte, (h.K+7)/8)
	if _, err := io.ReadFull(r, vecBytes); err != nil {
		return h, fmt.Errorf("packet: read vector: %w", err)
	}
	h.Vec = bitvec.New(h.K)
	if err := h.Vec.UnmarshalInto(vecBytes); err != nil {
		return h, err
	}
	return h, nil
}

// ReadPayload reads the payload announced by h from r and returns the
// completed packet.
func ReadPayload(r io.Reader, h Header) (*Packet, error) {
	p := &Packet{Vec: h.Vec, Generation: h.Generation, Generations: h.Generations, Object: h.Object}
	if h.M > 0 {
		p.Payload = make([]byte, h.M)
		if _, err := io.ReadFull(r, p.Payload); err != nil {
			return nil, fmt.Errorf("packet: read payload: %w", err)
		}
	}
	return p, nil
}

// Read reads a complete packet from r.
func Read(r io.Reader) (*Packet, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	return ReadPayload(r, h)
}

// Marshal returns the full wire encoding of p.
func Marshal(p *Packet) ([]byte, error) {
	if genStructured(p.Generations) && p.Generation >= p.Generations {
		return nil, fmt.Errorf("%w: generation %d of %d", ErrBadGeneration, p.Generation, p.Generations)
	}
	size := WireSize(p.K(), len(p.Payload))
	switch {
	case genStructured(p.Generations):
		size = GenWireSize(p.K(), len(p.Payload))
	case !p.Object.IsZero():
		size = ObjectWireSize(p.K(), len(p.Payload))
	}
	return AppendWire(make([]byte, 0, size), p), nil
}

// Unmarshal parses a packet from its full wire encoding.
func Unmarshal(data []byte) (*Packet, error) {
	r := &sliceReader{data: data}
	p, err := Read(r)
	if err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-r.off)
	}
	return p, nil
}

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
