// Package packet defines the encoded-packet representation shared by all
// coding schemes (LT, LTNC, RLNC) and its wire format.
//
// A packet carries a code vector — a GF(2) bitmap over the k native
// packets, "included in the headers of the packets" as in the paper — and
// an m-byte payload equal to the XOR of the native payloads selected by
// the vector. The wire format places the code vector *before* the payload
// so that a receiver can run redundancy detection on the header alone and
// abort the transfer of a non-innovative payload (the paper's binary
// feedback channel, Section III-C-2).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ltnc/internal/bitvec"
	"ltnc/internal/opcount"
)

// Packet is one encoded packet: the GF(2) combination Vec of native
// packets together with the combined Payload. Payload may be nil in
// control-plane-only simulations, where only code vectors matter.
type Packet struct {
	Vec     *bitvec.Vector
	Payload []byte
	// Generation identifies the coding generation the packet belongs to
	// when content is split into generations (0 when unused).
	Generation uint32
}

// New returns an all-zero packet over k native packets with an m-byte
// payload buffer (no buffer if m == 0).
func New(k, m int) *Packet {
	p := &Packet{Vec: bitvec.New(k)}
	if m > 0 {
		p.Payload = make([]byte, m)
	}
	return p
}

// Native returns the degree-1 packet for native index i carrying payload.
// The payload is copied so the caller keeps ownership of data.
func Native(k, i int, data []byte) *Packet {
	p := &Packet{Vec: bitvec.Single(k, i)}
	if len(data) > 0 {
		p.Payload = append([]byte(nil), data...)
	}
	return p
}

// K returns the code length (number of native packets).
func (p *Packet) K() int { return p.Vec.Len() }

// Degree returns the number of native packets combined in p.
func (p *Packet) Degree() int { return p.Vec.PopCount() }

// IsZero reports whether the packet combines no native packets.
func (p *Packet) IsZero() bool { return p.Vec.IsZero() }

// NativeIndex returns the native index of a degree-1 packet and true, or
// (-1, false) if the packet's degree is not 1.
func (p *Packet) NativeIndex() (int, bool) {
	i := p.Vec.LowestSet()
	if i < 0 || p.Vec.NextSet(i+1) >= 0 {
		return -1, false
	}
	return i, true
}

// Xor sets p = p ⊕ o, updating both the code vector and the payload, and
// records the control-word and data-byte costs on c (which may be nil).
// It returns p.
func (p *Packet) Xor(o *Packet, c *opcount.Counter, control, data opcount.Phase) *Packet {
	c.Add(control, opcount.WordOps(p.K(), 1))
	p.Vec.Xor(o.Vec)
	if len(p.Payload) > 0 && len(o.Payload) > 0 {
		c.Add(data, bitvec.XorBytes(p.Payload, o.Payload))
	}
	return p
}

// Clone returns a deep copy of p.
func (p *Packet) Clone() *Packet {
	q := &Packet{Vec: p.Vec.Clone(), Generation: p.Generation}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

// Equal reports whether two packets have identical vectors, payloads and
// generation.
func (p *Packet) Equal(o *Packet) bool {
	if !p.Vec.Equal(o.Vec) || p.Generation != o.Generation {
		return false
	}
	if len(p.Payload) != len(o.Payload) {
		return false
	}
	for i := range p.Payload {
		if p.Payload[i] != o.Payload[i] {
			return false
		}
	}
	return true
}

// String renders the packet as its support set, e.g. "{1,3}/8+256B".
func (p *Packet) String() string {
	return fmt.Sprintf("%v+%dB", p.Vec, len(p.Payload))
}

// Wire format
//
//	magic   "LT"        2 bytes
//	version 0x01        1 byte
//	flags               1 byte (reserved, 0)
//	generation          4 bytes big-endian
//	k                   4 bytes big-endian
//	m                   4 bytes big-endian
//	code vector         ceil(k/8) bytes
//	payload             m bytes
const (
	wireVersion    = 0x01
	headerFixed    = 2 + 1 + 1 + 4 + 4 + 4
	maxWireK       = 1 << 24 // sanity bound against corrupt headers
	maxWirePayload = 1 << 30
)

var wireMagic = [2]byte{'L', 'T'}

// Errors returned by the wire codec.
var (
	ErrBadMagic   = errors.New("packet: bad magic")
	ErrBadVersion = errors.New("packet: unsupported version")
	ErrCorrupt    = errors.New("packet: corrupt header")
)

// Header is the decoded fixed-size prefix plus code vector of a packet on
// the wire. Receivers inspect it (degree, redundancy check) before
// deciding whether to read the payload.
type Header struct {
	K          int
	M          int
	Generation uint32
	Vec        *bitvec.Vector
}

// Degree returns the degree announced by the header's code vector.
func (h Header) Degree() int { return h.Vec.PopCount() }

// HeaderSize returns the number of bytes a header occupies on the wire for
// code length k.
func HeaderSize(k int) int { return headerFixed + (k+7)/8 }

// WireSize returns the total on-wire size of a packet with code length k
// and payload size m.
func WireSize(k, m int) int { return HeaderSize(k) + m }

// WriteHeader writes the header of p to w.
func WriteHeader(w io.Writer, p *Packet) error {
	buf := make([]byte, headerFixed)
	buf[0], buf[1] = wireMagic[0], wireMagic[1]
	buf[2] = wireVersion
	buf[3] = 0
	binary.BigEndian.PutUint32(buf[4:], p.Generation)
	binary.BigEndian.PutUint32(buf[8:], uint32(p.K()))
	binary.BigEndian.PutUint32(buf[12:], uint32(len(p.Payload)))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("packet: write header: %w", err)
	}
	vec, err := p.Vec.MarshalBinary()
	if err != nil {
		return fmt.Errorf("packet: marshal vector: %w", err)
	}
	if _, err := w.Write(vec); err != nil {
		return fmt.Errorf("packet: write vector: %w", err)
	}
	return nil
}

// WritePayload writes the payload of p to w. Call it after WriteHeader
// once the receiver has accepted the transfer.
func WritePayload(w io.Writer, p *Packet) error {
	if len(p.Payload) == 0 {
		return nil
	}
	if _, err := w.Write(p.Payload); err != nil {
		return fmt.Errorf("packet: write payload: %w", err)
	}
	return nil
}

// Write writes the complete packet (header then payload) to w.
func Write(w io.Writer, p *Packet) error {
	if err := WriteHeader(w, p); err != nil {
		return err
	}
	return WritePayload(w, p)
}

// ReadHeader reads and validates a packet header from r.
func ReadHeader(r io.Reader) (Header, error) {
	var h Header
	buf := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("packet: read header: %w", err)
	}
	if buf[0] != wireMagic[0] || buf[1] != wireMagic[1] {
		return h, ErrBadMagic
	}
	if buf[2] != wireVersion {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	h.Generation = binary.BigEndian.Uint32(buf[4:])
	k := binary.BigEndian.Uint32(buf[8:])
	m := binary.BigEndian.Uint32(buf[12:])
	if k == 0 || k > maxWireK || m > maxWirePayload {
		return h, fmt.Errorf("%w: k=%d m=%d", ErrCorrupt, k, m)
	}
	h.K, h.M = int(k), int(m)
	vecBytes := make([]byte, (h.K+7)/8)
	if _, err := io.ReadFull(r, vecBytes); err != nil {
		return h, fmt.Errorf("packet: read vector: %w", err)
	}
	h.Vec = bitvec.New(h.K)
	if err := h.Vec.UnmarshalInto(vecBytes); err != nil {
		return h, err
	}
	return h, nil
}

// ReadPayload reads the payload announced by h from r and returns the
// completed packet.
func ReadPayload(r io.Reader, h Header) (*Packet, error) {
	p := &Packet{Vec: h.Vec, Generation: h.Generation}
	if h.M > 0 {
		p.Payload = make([]byte, h.M)
		if _, err := io.ReadFull(r, p.Payload); err != nil {
			return nil, fmt.Errorf("packet: read payload: %w", err)
		}
	}
	return p, nil
}

// Read reads a complete packet from r.
func Read(r io.Reader) (*Packet, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	return ReadPayload(r, h)
}

// Marshal returns the full wire encoding of p.
func Marshal(p *Packet) ([]byte, error) {
	buf := make([]byte, 0, WireSize(p.K(), len(p.Payload)))
	w := &appendWriter{buf: buf}
	if err := Write(w, p); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// Unmarshal parses a packet from its full wire encoding.
func Unmarshal(data []byte) (*Packet, error) {
	r := &sliceReader{data: data}
	p, err := Read(r)
	if err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-r.off)
	}
	return p, nil
}

type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
