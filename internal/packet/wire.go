package packet

import (
	"encoding/binary"
	"fmt"
)

// WireView is a validated, zero-copy view of one packet inside a single
// wire buffer (a datagram). It carries the decoded fixed fields and the
// offsets of the code vector and payload, so the receive hot path can
// inspect the header and copy the body straight into arena buffers
// without the io.Reader scaffolding of ReadHeader/ReadPayload.
type WireView struct {
	Version    byte
	Generation uint32
	// Generations is the object's generation count from a v3 header
	// (≥ 2); 0 for gen-absent v1/v2 frames. In a v3 frame K is the
	// PER-GENERATION code length.
	Generations uint32
	K, M        int
	Object      ObjectID
	vecOff      int
	payloadOff  int
}

// VecBytes returns the code-vector bytes of the viewed packet inside
// data, which must be the buffer ParseWire validated.
func (wv WireView) VecBytes(data []byte) []byte { return data[wv.vecOff:wv.payloadOff] }

// PayloadBytes returns the payload bytes of the viewed packet inside
// data, which must be the buffer ParseWire validated.
func (wv WireView) PayloadBytes(data []byte) []byte {
	return data[wv.payloadOff : wv.payloadOff+wv.M]
}

// ParseWire validates a complete packet encoding in data and returns its
// layout without copying or allocating. It enforces the same header
// checks as ReadHeader plus an exact-length check (datagram transports
// deliver whole packets; trailing bytes mean corruption).
func ParseWire(data []byte) (WireView, error) {
	var wv WireView
	if len(data) < headerFixed {
		return wv, fmt.Errorf("%w: %d-byte frame", ErrCorrupt, len(data))
	}
	if data[0] != wireMagic[0] || data[1] != wireMagic[1] {
		return wv, ErrBadMagic
	}
	wv.Version = data[2]
	if wv.Version != wireV1 && wv.Version != wireV2 && wv.Version != wireV3 {
		return wv, fmt.Errorf("%w: %d", ErrBadVersion, wv.Version)
	}
	wv.Generation = binary.BigEndian.Uint32(data[4:])
	k := binary.BigEndian.Uint32(data[8:])
	m := binary.BigEndian.Uint32(data[12:])
	if k == 0 || k > maxWireK || m > maxWirePayload {
		return wv, fmt.Errorf("%w: k=%d m=%d", ErrCorrupt, k, m)
	}
	wv.K, wv.M = int(k), int(m)
	wv.vecOff = headerFixed
	if wv.Version == wireV3 {
		if len(data) < headerFixed+genCountSize {
			return wv, fmt.Errorf("%w: truncated generation count", ErrCorrupt)
		}
		wv.Generations = binary.BigEndian.Uint32(data[headerFixed:])
		if wv.Generations < 2 || wv.Generations > maxWireGens {
			return wv, fmt.Errorf("%w: v3 frame with G=%d", ErrBadGeneration, wv.Generations)
		}
		if wv.Generation >= wv.Generations {
			return wv, fmt.Errorf("%w: generation %d of %d", ErrBadGeneration, wv.Generation, wv.Generations)
		}
		wv.vecOff += genCountSize
	}
	if wv.Version == wireV2 || wv.Version == wireV3 {
		if len(data) < wv.vecOff+objectIDSize {
			return wv, fmt.Errorf("%w: truncated object id", ErrCorrupt)
		}
		copy(wv.Object[:], data[wv.vecOff:])
		if wv.Version == wireV2 && wv.Object.IsZero() {
			return wv, fmt.Errorf("%w: v2 header with zero object id", ErrCorrupt)
		}
		wv.vecOff += objectIDSize
	}
	wv.payloadOff = wv.vecOff + (wv.K+7)/8
	if total := wv.payloadOff + wv.M; len(data) != total {
		return wv, fmt.Errorf("%w: %d-byte frame, want %d", ErrCorrupt, len(data), total)
	}
	// Stray bits beyond k in the final vector byte would index out of the
	// decoder's native arrays; both codecs reject them identically.
	if r := wv.K % 8; r != 0 && data[wv.payloadOff-1]>>r != 0 {
		return wv, fmt.Errorf("%w: stray bits beyond k=%d", ErrCorrupt, wv.K)
	}
	return wv, nil
}

// AppendWire appends the full wire encoding of p to dst and returns it.
// It is the allocation-free counterpart of Marshal for callers that
// serialize into pooled frame buffers. Unlike Marshal it cannot report a
// generation id outside [0, Generations) — callers stamping generations
// (the coder does) must keep them consistent, or receivers will reject
// the frame with ErrBadGeneration.
func AppendWire(dst []byte, p *Packet) []byte {
	version := byte(wireV1)
	switch {
	case genStructured(p.Generations):
		version = wireV3
	case !p.Object.IsZero():
		version = wireV2
	}
	var fixed [headerFixed]byte
	fixed[0], fixed[1] = wireMagic[0], wireMagic[1]
	fixed[2] = version
	fixed[3] = 0
	binary.BigEndian.PutUint32(fixed[4:], p.Generation)
	binary.BigEndian.PutUint32(fixed[8:], uint32(p.K()))
	binary.BigEndian.PutUint32(fixed[12:], uint32(len(p.Payload)))
	dst = append(dst, fixed[:]...)
	if version == wireV3 {
		dst = binary.BigEndian.AppendUint32(dst, p.Generations)
	}
	if version != wireV1 {
		dst = append(dst, p.Object[:]...)
	}
	dst = p.Vec.AppendBinary(dst)
	return append(dst, p.Payload...)
}
