package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestManifestChunkRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	man := make([]byte, 8+17*32)
	rng.Read(man)
	id := NewObjectID([]byte("manifest roundtrip"))

	// Split at an awkward chunk size and reassemble.
	var frames [][]byte
	const chunk = 100
	for off := 0; off < len(man); off += chunk {
		end := off + chunk
		if end > len(man) {
			end = len(man)
		}
		body, err := AppendManifestChunk(nil, id, uint32(len(man)), uint32(off), man[off:end])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, body)
	}
	got := make([]byte, len(man))
	for _, body := range frames {
		mc, err := ParseManifestChunk(body)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Object != id {
			t.Fatal("object id mismatch")
		}
		if int(mc.Total) != len(man) {
			t.Fatalf("total %d, want %d", mc.Total, len(man))
		}
		copy(got[mc.Off:], mc.Data)
	}
	if !bytes.Equal(got, man) {
		t.Fatal("reassembled manifest differs")
	}
}

func TestManifestChunkParseErrors(t *testing.T) {
	id := NewObjectID([]byte("manifest errors"))
	good, err := AppendManifestChunk(nil, id, 64, 0, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(d []byte)) []byte {
		d := append([]byte(nil), good...)
		f(d)
		return d
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated fixed", good[:manifestChunkFixed]},
		{"truncated data", good[:len(good)-1]},
		{"trailing", append(append([]byte(nil), good...), 0)},
		{"zero total", mut(func(d []byte) { d[16], d[17], d[18], d[19] = 0, 0, 0, 0 })},
		{"huge total", mut(func(d []byte) { d[16] = 0xff })},
		{"range past total", mut(func(d []byte) { d[23] = 60 })}, // off=60, n=16 > total 64
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseManifestChunk(tc.data); !errors.Is(err, ErrBadManifestChunk) {
				t.Fatalf("got %v, want ErrBadManifestChunk", err)
			}
		})
	}
	if _, err := ParseManifestChunk(good); err != nil {
		t.Fatalf("good chunk rejected: %v", err)
	}
}

func TestAppendManifestChunkBounds(t *testing.T) {
	id := NewObjectID([]byte("append bounds"))
	if _, err := AppendManifestChunk(nil, id, 8, 0, nil); err == nil {
		t.Error("empty chunk accepted")
	}
	if _, err := AppendManifestChunk(nil, id, 8, 4, make([]byte, 8)); err == nil {
		t.Error("chunk past total accepted")
	}
	if _, err := AppendManifestChunk(nil, id, MaxManifestWire+1, 0, make([]byte, 8)); err == nil {
		t.Error("oversized total accepted")
	}
	if _, err := AppendManifestChunk(nil, id, 1<<20, 0, make([]byte, MaxManifestChunk+1)); err == nil {
		t.Error("oversized chunk accepted")
	}
}
