package packet

import (
	"errors"
	"strings"
	"testing"
)

func TestMemberBodyRoundTrip(t *testing.T) {
	entries := []MemberEntry{
		{Addr: "10.0.0.1:4980", Age: 0, Capacity: 200, Role: MemberRoleRelay},
		{Addr: "edge-cache-7", Age: 3, Capacity: 160, Role: MemberRoleCache},
		{Addr: "f", Age: 65535, Capacity: 0, Role: 0},
	}
	body, err := AppendMemberBody(nil, MemberFlagReply, entries)
	if err != nil {
		t.Fatal(err)
	}
	flags, got, err := ParseMemberBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if flags != MemberFlagReply {
		t.Fatalf("flags = %#x, want %#x", flags, MemberFlagReply)
	}
	if len(got) != len(entries) {
		t.Fatalf("parsed %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		if got[i] != e {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], e)
		}
	}
}

func TestMemberBodyEmpty(t *testing.T) {
	body, err := AppendMemberBody(nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	flags, got, err := ParseMemberBody(body)
	if err != nil || flags != 0 || len(got) != 0 {
		t.Fatalf("empty exchange: flags=%#x entries=%v err=%v", flags, got, err)
	}
}

func TestMemberBodyAppendBounds(t *testing.T) {
	many := make([]MemberEntry, MaxMemberEntries+1)
	for i := range many {
		many[i].Addr = "x"
	}
	if _, err := AppendMemberBody(nil, 0, many); !errors.Is(err, ErrBadMember) {
		t.Fatalf("oversized entry count: err = %v", err)
	}
	if _, err := AppendMemberBody(nil, 0, []MemberEntry{{}}); !errors.Is(err, ErrBadMember) {
		t.Fatalf("empty address accepted: err = %v", err)
	}
	long := MemberEntry{Addr: strings.Repeat("a", MaxMemberAddr+1)}
	if _, err := AppendMemberBody(nil, 0, []MemberEntry{long}); !errors.Is(err, ErrBadMember) {
		t.Fatalf("oversized address accepted: err = %v", err)
	}
	edge := MemberEntry{Addr: strings.Repeat("a", MaxMemberAddr)}
	body, err := AppendMemberBody(nil, 0, []MemberEntry{edge})
	if err != nil {
		t.Fatal(err)
	}
	if _, got, err := ParseMemberBody(body); err != nil || got[0].Addr != edge.Addr {
		t.Fatalf("max-length address did not round-trip: %v", err)
	}
}

func TestMemberBodyParseBounds(t *testing.T) {
	body, err := AppendMemberBody(nil, 0, []MemberEntry{{Addr: "peer-1", Age: 7}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"flags only":      {0},
		"count over max":  {0, MaxMemberEntries + 1},
		"entry truncated": {0, 1, 0, 0},
		"zero addrLen":    {0, 1, 0, 0, 0, 0, 0},
		"addr truncated":  body[:len(body)-2],
		"trailing bytes":  append(append([]byte(nil), body...), 0xff),
		"count past data": {0, 2, 0, 0, 0, 0, 1, 'a'},
	}
	for name, data := range cases {
		if _, _, err := ParseMemberBody(data); !errors.Is(err, ErrBadMember) {
			t.Errorf("%s: err = %v, want ErrBadMember", name, err)
		}
		if _, _, err := ParseMemberBody(data); !errors.Is(err, ErrBadPacket) {
			t.Errorf("%s: ErrBadMember does not wrap ErrBadPacket", name)
		}
	}
}

func TestMemberEntriesDoNotAliasInput(t *testing.T) {
	body, err := AppendMemberBody(nil, 0, []MemberEntry{{Addr: "stable"}})
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := ParseMemberBody(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xAA
	}
	if got[0].Addr != "stable" {
		t.Fatalf("entry address mutated with input buffer: %q", got[0].Addr)
	}
}
