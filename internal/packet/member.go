package packet

import (
	"encoding/binary"
	"fmt"
)

// MEMBER wire body — the payload of the session layer's MEMBER frame
// kind, the PEX-style partial-view exchange of the membership plane. A
// shuffle offer (or its reply) carries a small sample of the sender's
// view, each entry naming a peer with its liveness age and a coarse
// serving hint:
//
//	flags    1 byte    bit 0: reply — answers a shuffle, must not be
//	                   answered again (prevents shuffle ping-pong)
//	count    1 byte    number of entries, ≤ MaxMemberEntries
//	count ×
//	  role      1 byte   bit 0: relay, bit 1: cache
//	  capacity  1 byte   relative serving-capacity hint (0 = unknown)
//	  age       2 bytes  shuffle rounds since the entry was last fresh
//	  addrLen   1 byte   ≥ 1
//	  addr      addrLen bytes, opaque transport address
//
// The codec bounds every field so a hostile exchange can neither claim
// an unbounded view nor smuggle empty or oversized addresses; semantic
// filtering (self, banned, duplicate peers) belongs to the view merge in
// internal/gossip.
const (
	// memberEntryFixed is the fixed prefix of one entry before the
	// address bytes: role, capacity, age, addrLen.
	memberEntryFixed = 1 + 1 + 2 + 1

	// MaxMemberEntries caps the entries one exchange may carry. Shuffle
	// offers are half-view samples, far smaller than this; the cap is a
	// codec-level backstop on per-frame work and allocation.
	MaxMemberEntries = 64

	// MaxMemberAddr is the longest address one entry may carry; it is
	// what a single length byte can express, ample for any host:port.
	MaxMemberAddr = 255

	// MemberFlagReply marks an exchange that answers a shuffle offer;
	// receivers merge it but never answer it.
	MemberFlagReply = 0x01

	// MemberRoleRelay and MemberRoleCache are the role bits carried per
	// entry: the peer recodes and re-serves objects (relay) or holds a
	// byte-budgeted partial cache (cache). A plain fetcher has no bits.
	MemberRoleRelay = 0x01
	MemberRoleCache = 0x02
)

// ErrBadMember marks a malformed MEMBER body: truncated buffer, entry
// count over MaxMemberEntries, an empty address, or trailing bytes. It
// wraps ErrBadPacket.
var ErrBadMember = fmt.Errorf("%w: bad member exchange", ErrBadPacket)

// MemberEntry is one peer of a partial-view exchange.
type MemberEntry struct {
	// Addr is the peer's opaque transport address, 1..MaxMemberAddr
	// bytes on the wire.
	Addr string
	// Age counts shuffle rounds since the entry was last known fresh;
	// receivers prefer younger entries when merging.
	Age uint16
	// Capacity is the peer's relative serving-capacity hint (0 =
	// unknown); neighbor selection prefers higher values.
	Capacity uint8
	// Role holds the MemberRole* bits.
	Role uint8
}

// AppendMemberBody appends the wire body of one partial-view exchange
// and returns the extended slice.
func AppendMemberBody(dst []byte, flags byte, entries []MemberEntry) ([]byte, error) {
	if len(entries) > MaxMemberEntries {
		return dst, fmt.Errorf("%w: %d entries", ErrBadMember, len(entries))
	}
	dst = append(dst, flags, byte(len(entries)))
	for _, e := range entries {
		if len(e.Addr) < 1 || len(e.Addr) > MaxMemberAddr {
			return dst, fmt.Errorf("%w: address of %d bytes", ErrBadMember, len(e.Addr))
		}
		dst = append(dst, e.Role, e.Capacity)
		dst = binary.BigEndian.AppendUint16(dst, e.Age)
		dst = append(dst, byte(len(e.Addr)))
		dst = append(dst, e.Addr...)
	}
	return dst, nil
}

// ParseMemberBody decodes a partial-view exchange body. The returned
// entries do not alias data; every accepted entry has a non-empty
// address.
func ParseMemberBody(data []byte) (flags byte, entries []MemberEntry, err error) {
	if len(data) < 2 {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrBadMember, len(data))
	}
	flags = data[0]
	n := int(data[1])
	if n > MaxMemberEntries {
		return 0, nil, fmt.Errorf("%w: %d entries", ErrBadMember, n)
	}
	rest := data[2:]
	entries = make([]MemberEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < memberEntryFixed {
			return 0, nil, fmt.Errorf("%w: entry %d truncated", ErrBadMember, i)
		}
		e := MemberEntry{
			Role:     rest[0],
			Capacity: rest[1],
			Age:      binary.BigEndian.Uint16(rest[2:]),
		}
		alen := int(rest[4])
		if alen < 1 {
			return 0, nil, fmt.Errorf("%w: entry %d has an empty address", ErrBadMember, i)
		}
		if len(rest) < memberEntryFixed+alen {
			return 0, nil, fmt.Errorf("%w: entry %d address truncated", ErrBadMember, i)
		}
		e.Addr = string(rest[memberEntryFixed : memberEntryFixed+alen])
		rest = rest[memberEntryFixed+alen:]
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMember, len(rest))
	}
	return flags, entries, nil
}
