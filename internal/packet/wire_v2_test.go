package packet

import (
	"bytes"
	"errors"
	"testing"
)

func TestObjectIDRoundtrip(t *testing.T) {
	p := Native(64, 3, []byte("payload bytes"))
	p.Generation = 7
	p.Object = NewObjectID([]byte("object"))

	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := ObjectWireSize(64, len(p.Payload)); len(data) != want {
		t.Fatalf("v2 wire size = %d, want %d", len(data), want)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Fatalf("roundtrip mismatch: %v != %v", p, q)
	}
	if q.Object != p.Object {
		t.Fatalf("object id lost: %v", q.Object)
	}
}

func TestZeroObjectStaysV1(t *testing.T) {
	// A packet without an object ID must marshal to the original v1
	// format, bit-identical to what pre-session code produced.
	p := Native(64, 3, []byte("payload bytes"))
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := WireSize(64, len(p.Payload)); len(data) != want {
		t.Fatalf("v1 wire size = %d, want %d", len(data), want)
	}
	if data[2] != wireV1 {
		t.Fatalf("version byte = %d, want %d", data[2], wireV1)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Object.IsZero() {
		t.Fatalf("v1 packet decoded with object id %v", q.Object)
	}
}

func TestV2ZeroObjectRejected(t *testing.T) {
	// Forge a v2 header with an all-zero object ID: decoders must reject
	// it, both for canonicality (it would re-marshal as v1) and because a
	// zero ID means "no object".
	p := Native(8, 1, []byte{1})
	p.Object = NewObjectID([]byte("x"))
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < objectIDSize; i++ {
		data[headerFixed+i] = 0
	}
	if _, err := Unmarshal(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-object v2 accepted: %v", err)
	}
}

func TestV2TruncatedObjectID(t *testing.T) {
	p := Native(8, 1, []byte{1})
	p.Object = NewObjectID([]byte("x"))
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(bytes.NewReader(data[:headerFixed+4])); err == nil {
		t.Fatal("truncated v2 header accepted")
	}
}

func TestHeaderCarriesObject(t *testing.T) {
	p := Native(32, 5, make([]byte, 16))
	p.Object = NewObjectID([]byte("hdr"))
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if h.Object != p.Object {
		t.Fatalf("header object = %v, want %v", h.Object, p.Object)
	}
	q, err := ReadPayload(bytes.NewReader(data[ObjectHeaderSize(32):]), h)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(p) {
		t.Fatal("header+payload roundtrip mismatch")
	}
}
