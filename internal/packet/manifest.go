package packet

import (
	"encoding/binary"
	"fmt"
)

// Manifest chunk wire body — the payload of the session layer's MANIFEST
// frame kind. An integrity manifest (k + m + k SHA-256 digests, see
// internal/integrity) can outgrow a single transport frame for large k,
// so it travels as offset-addressed chunks of one opaque byte string:
//
//	object  16 bytes   content ID the manifest covers
//	total    4 bytes   length of the whole encoded manifest
//	off      4 bytes   offset of this chunk within it
//	n        2 bytes   chunk length
//	bytes    n bytes   manifest[off : off+n]
//
// The codec treats the manifest as opaque — integrity.UnmarshalManifest
// validates the assembled bytes — but bounds every field so a hostile
// chunk can neither oversize the reassembly buffer nor write outside it.
const (
	// manifestChunkFixed is the fixed prefix before the chunk bytes.
	manifestChunkFixed = 16 + 4 + 4 + 2

	// MaxManifestWire caps the total manifest length a chunk may
	// declare. It is a codec-level backstop (the session further bounds
	// total against its own MaxK before allocating); 128 MiB covers
	// k = 2^22 digests.
	MaxManifestWire = 1 << 27

	// MaxManifestChunk is the largest chunk payload AppendManifestChunk
	// will emit — sized so a chunk frame plus the session's one-byte
	// frame tag stays well inside transport.MaxFrame.
	MaxManifestChunk = 32 * 1024
)

// ErrBadManifestChunk marks a malformed manifest chunk body: truncated
// buffer, zero or oversized total, or a chunk range outside [0, total).
// It wraps ErrBadPacket.
var ErrBadManifestChunk = fmt.Errorf("%w: bad manifest chunk", ErrBadPacket)

// ManifestChunk is one decoded manifest chunk.
type ManifestChunk struct {
	Object ObjectID
	// Total is the length in bytes of the complete encoded manifest.
	Total uint32
	// Off is the offset of Data within the complete manifest.
	Off uint32
	// Data aliases the input buffer passed to ParseManifestChunk; copy
	// before retaining.
	Data []byte
}

// AppendManifestChunk appends the wire body for manifest[off:off+n] of an
// encoded manifest of total bytes and returns the extended slice.
func AppendManifestChunk(dst []byte, object ObjectID, total, off uint32, chunk []byte) ([]byte, error) {
	if len(chunk) < 1 || len(chunk) > MaxManifestChunk {
		return dst, fmt.Errorf("%w: chunk of %d bytes", ErrBadManifestChunk, len(chunk))
	}
	if total < 1 || total > MaxManifestWire {
		return dst, fmt.Errorf("%w: total %d", ErrBadManifestChunk, total)
	}
	if uint64(off)+uint64(len(chunk)) > uint64(total) {
		return dst, fmt.Errorf("%w: range [%d, %d) outside total %d",
			ErrBadManifestChunk, off, int(off)+len(chunk), total)
	}
	dst = append(dst, object[:]...)
	dst = binary.BigEndian.AppendUint32(dst, total)
	dst = binary.BigEndian.AppendUint32(dst, off)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(chunk)))
	return append(dst, chunk...), nil
}

// ParseManifestChunk decodes a manifest chunk body. The returned Data
// aliases data. Every accepted chunk satisfies
// 1 ≤ Total ≤ MaxManifestWire and Off+len(Data) ≤ Total.
func ParseManifestChunk(data []byte) (ManifestChunk, error) {
	var mc ManifestChunk
	if len(data) < manifestChunkFixed+1 {
		return mc, fmt.Errorf("%w: %d bytes", ErrBadManifestChunk, len(data))
	}
	copy(mc.Object[:], data)
	mc.Total = binary.BigEndian.Uint32(data[16:])
	mc.Off = binary.BigEndian.Uint32(data[20:])
	n := int(binary.BigEndian.Uint16(data[24:]))
	if len(data) != manifestChunkFixed+n {
		return mc, fmt.Errorf("%w: %d trailing bytes", ErrBadManifestChunk, len(data)-manifestChunkFixed-n)
	}
	if mc.Total < 1 || mc.Total > MaxManifestWire {
		return mc, fmt.Errorf("%w: total %d", ErrBadManifestChunk, mc.Total)
	}
	if uint64(mc.Off)+uint64(n) > uint64(mc.Total) {
		return mc, fmt.Errorf("%w: range [%d, %d) outside total %d",
			ErrBadManifestChunk, mc.Off, int(mc.Off)+n, mc.Total)
	}
	mc.Data = data[manifestChunkFixed:]
	return mc, nil
}
