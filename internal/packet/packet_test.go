package packet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"ltnc/internal/bitvec"
	"ltnc/internal/opcount"
)

func TestNativePacket(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	p := Native(16, 5, data)
	if p.Degree() != 1 {
		t.Errorf("Degree = %d", p.Degree())
	}
	idx, ok := p.NativeIndex()
	if !ok || idx != 5 {
		t.Errorf("NativeIndex = %d,%v", idx, ok)
	}
	data[0] = 99
	if p.Payload[0] != 1 {
		t.Error("Native did not copy payload")
	}
}

func TestNativeIndexNonNative(t *testing.T) {
	p := New(8, 0)
	if _, ok := p.NativeIndex(); ok {
		t.Error("zero packet reported a native index")
	}
	p.Vec.Set(1)
	p.Vec.Set(2)
	if _, ok := p.NativeIndex(); ok {
		t.Error("degree-2 packet reported a native index")
	}
}

func TestXorCombinesVectorAndPayload(t *testing.T) {
	a := Native(8, 1, []byte{0xF0, 0x0F})
	b := Native(8, 3, []byte{0xFF, 0x00})
	var c opcount.Counter
	a.Xor(b, &c, opcount.RecodeControl, opcount.RecodeData)
	if a.Degree() != 2 || !a.Vec.Get(1) || !a.Vec.Get(3) {
		t.Errorf("vector after xor: %v", a.Vec)
	}
	if a.Payload[0] != 0x0F || a.Payload[1] != 0x0F {
		t.Errorf("payload after xor: %v", a.Payload)
	}
	if c.Total(opcount.RecodeControl) == 0 {
		t.Error("control cost not recorded")
	}
	if got := c.Total(opcount.RecodeData); got != 2 {
		t.Errorf("data cost = %d, want 2", got)
	}
}

func TestXorNilCounter(t *testing.T) {
	a := Native(8, 1, []byte{1})
	b := Native(8, 2, []byte{2})
	a.Xor(b, nil, opcount.RecodeControl, opcount.RecodeData) // must not panic
	if a.Payload[0] != 3 {
		t.Errorf("payload = %v", a.Payload)
	}
}

func TestXorControlOnlyPackets(t *testing.T) {
	// m = 0 packets (control-plane simulation) must XOR without panicking.
	a := New(8, 0)
	a.Vec.Set(0)
	b := New(8, 0)
	b.Vec.Set(1)
	a.Xor(b, nil, opcount.RecodeControl, opcount.RecodeData)
	if a.Degree() != 2 {
		t.Errorf("Degree = %d", a.Degree())
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Native(8, 2, []byte{5})
	p.Generation = 7
	q := p.Clone()
	if !q.Equal(p) {
		t.Fatal("clone not equal")
	}
	q.Vec.Set(3)
	q.Payload[0] = 9
	if p.Vec.Get(3) || p.Payload[0] != 5 {
		t.Error("clone shares state with original")
	}
}

func TestEqual(t *testing.T) {
	a := Native(8, 1, []byte{1, 2})
	tests := []struct {
		name string
		make func() *Packet
		want bool
	}{
		{"same", func() *Packet { return Native(8, 1, []byte{1, 2}) }, true},
		{"different vec", func() *Packet { return Native(8, 2, []byte{1, 2}) }, false},
		{"different payload", func() *Packet { return Native(8, 1, []byte{1, 3}) }, false},
		{"different length", func() *Packet { return Native(8, 1, []byte{1}) }, false},
		{"different generation", func() *Packet {
			p := Native(8, 1, []byte{1, 2})
			p.Generation = 1
			return p
		}, false},
	}
	for _, tt := range tests {
		if got := a.Equal(tt.make()); got != tt.want {
			t.Errorf("%s: Equal = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestWireRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 7, 8, 64, 65, 2048} {
		for _, m := range []int{0, 1, 16, 300} {
			p := New(k, m)
			for i := 0; i < k; i++ {
				if rng.Intn(3) == 0 {
					p.Vec.Set(i)
				}
			}
			rng.Read(p.Payload)
			p.Generation = uint32(rng.Intn(100))

			data, err := Marshal(p)
			if err != nil {
				t.Fatalf("k=%d m=%d: marshal: %v", k, m, err)
			}
			if len(data) != WireSize(k, m) {
				t.Fatalf("k=%d m=%d: wire size %d, want %d", k, m, len(data), WireSize(k, m))
			}
			q, err := Unmarshal(data)
			if err != nil {
				t.Fatalf("k=%d m=%d: unmarshal: %v", k, m, err)
			}
			if !q.Equal(p) {
				t.Fatalf("k=%d m=%d: roundtrip mismatch", k, m)
			}
		}
	}
}

func TestWireRoundtripQuick(t *testing.T) {
	prop := func(seed int64, kRaw, mRaw uint16, gen uint32) bool {
		k := int(kRaw%512) + 1
		m := int(mRaw % 128)
		rng := rand.New(rand.NewSource(seed))
		p := New(k, m)
		for i := 0; i < k; i++ {
			if rng.Intn(2) == 0 {
				p.Vec.Set(i)
			}
		}
		rng.Read(p.Payload)
		p.Generation = gen
		data, err := Marshal(p)
		if err != nil {
			return false
		}
		q, err := Unmarshal(data)
		return err == nil && q.Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeaderOnlyRead(t *testing.T) {
	// A receiver must be able to inspect the header and stop without
	// consuming the payload — the binary feedback channel.
	p := Native(64, 9, bytes.Repeat([]byte{0xAB}, 32))
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.K != 64 || h.M != 32 || h.Degree() != 1 || !h.Vec.Get(9) {
		t.Errorf("header = %+v", h)
	}
	if buf.Len() != 32 {
		t.Errorf("payload bytes remaining = %d, want 32", buf.Len())
	}
	// And resume reading if accepted.
	q, err := ReadPayload(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(p) {
		t.Error("resumed packet differs")
	}
}

func TestReadHeaderErrors(t *testing.T) {
	good, err := Marshal(Native(8, 0, []byte{1}))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), good...)
		mutate(c)
		return c
	}
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", corrupt(func(b []byte) { b[2] = 0xFF }), ErrBadVersion},
		{"zero k", corrupt(func(b []byte) { b[8], b[9], b[10], b[11] = 0, 0, 0, 0 }), ErrCorrupt},
		{"truncated", good[:3], io.ErrUnexpectedEOF},
		{"empty", nil, io.EOF},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadHeader(bytes.NewReader(tt.data))
			if !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUnmarshalTrailingGarbage(t *testing.T) {
	data, err := Marshal(Native(8, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(data, 0xEE)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("error = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	p := Native(8, 0, []byte{1, 2, 3, 4})
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(data[:len(data)-2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error = %v, want unexpected EOF", err)
	}
}

func TestHeaderSize(t *testing.T) {
	if got := HeaderSize(2048); got != 16+256 {
		t.Errorf("HeaderSize(2048) = %d", got)
	}
	if got := WireSize(8, 100); got != 16+1+100 {
		t.Errorf("WireSize(8,100) = %d", got)
	}
}

func TestString(t *testing.T) {
	p := Native(8, 3, []byte{1, 2})
	if got := p.String(); got != "{3}/8+2B" {
		t.Errorf("String = %q", got)
	}
}

func TestXorIsLinearOverPayloads(t *testing.T) {
	// Property: for packets built from native ground truth, the payload of
	// any XOR combination equals the XOR of the natives in its vector.
	const (
		k = 32
		m = 16
	)
	rng := rand.New(rand.NewSource(77))
	natives := make([][]byte, k)
	for i := range natives {
		natives[i] = make([]byte, m)
		rng.Read(natives[i])
	}
	check := func(p *Packet) bool {
		want := make([]byte, m)
		for _, i := range p.Vec.Indices() {
			bitvec.XorBytes(want, natives[i])
		}
		return bytes.Equal(want, p.Payload)
	}
	a := Native(k, 3, natives[3])
	b := Native(k, 7, natives[7])
	c := Native(k, 3, natives[3]) // collides with a
	a.Xor(b, nil, opcount.RecodeControl, opcount.RecodeData)
	if !check(a) {
		t.Error("a⊕b payload inconsistent")
	}
	a.Xor(c, nil, opcount.RecodeControl, opcount.RecodeData)
	if a.Degree() != 1 {
		t.Errorf("collision degree = %d, want 1", a.Degree())
	}
	if !check(a) {
		t.Error("collision payload inconsistent")
	}
}
