#!/bin/sh
# apicheck.sh — the API-compatibility gate for the public packages.
#
# Diffs `go doc -all` of every public package against the committed
# goldens under api/, so a PR cannot silently change an exported
# signature, type, constant or doc contract. After a deliberate API
# change, run
#
#	tools/apicheck.sh -update
#
# and commit the refreshed goldens; the diff then documents the change
# for review.
set -eu
cd "$(dirname "$0")/.."

# public package dir → golden file
packages="
.:api/ltnc.txt
./swarm:api/ltnc_swarm.txt
./transport:api/ltnc_transport.txt
./simlab:api/ltnc_simlab.txt
"

mode="${1:-check}"
status=0
for entry in $packages; do
	pkg="${entry%%:*}"
	golden="${entry#*:}"
	if [ "$mode" = "-update" ]; then
		mkdir -p "$(dirname "$golden")"
		go doc -all "$pkg" >"$golden"
		echo "updated $golden"
	elif ! go doc -all "$pkg" | diff -u "$golden" - >/tmp/apidiff.$$ 2>&1; then
		echo "API drift in $pkg (vs $golden):" >&2
		cat /tmp/apidiff.$$ >&2
		status=1
	fi
done
rm -f /tmp/apidiff.$$
if [ "$mode" != "-update" ] && [ "$status" -ne 0 ]; then
	echo "public API changed: review, then run tools/apicheck.sh -update and commit the goldens" >&2
fi
exit "$status"
