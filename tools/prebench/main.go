//go:build ignore

// prebench measures the pre-PR decode hot path (ReadHeader → IsRedundant
// → ReadPayload → Receive) on the 1 MiB / 64-object workload, for the
// BENCH_decode.json reference entry.
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ltnc/internal/core"
	"ltnc/internal/lt"
	"ltnc/internal/packet"
	"ltnc/internal/xrand"
)

const (
	objects    = 64
	objectSize = 16 * 1024
	k          = 64
	streamF    = 4
	rounds     = 3
	seed       = 1
)

type stream struct {
	frames [][]byte
	next   int
}

func main() {
	streams := make([]*stream, objects)
	m := 0
	for i := range streams {
		content := make([]byte, objectSize)
		rand.New(rand.NewSource(xrand.DeriveSeed(seed, i))).Read(content)
		natives, err := lt.Split(content, k)
		if err != nil {
			panic(err)
		}
		m = len(natives[0])
		src, err := core.NewNode(core.Options{K: k, M: m, Rng: xrand.NewChild(seed, i)})
		if err != nil {
			panic(err)
		}
		if err := src.Seed(natives); err != nil {
			panic(err)
		}
		st := &stream{}
		id := packet.NewObjectID(content)
		for j := 0; j < streamF*k; j++ {
			z, ok := src.Recode()
			if !ok {
				panic("recode failed")
			}
			z.Object = id
			wire, err := packet.Marshal(z)
			if err != nil {
				panic(err)
			}
			st.frames = append(st.frames, wire)
		}
		streams[i] = st
	}

	bestNs := int64(0)
	var bestPkts int64
	var bestAllocs float64
	for r := 0; r < rounds; r++ {
		for _, st := range streams {
			st.next = 0
		}
		nodes := make([]*core.Node, objects)
		for i := range nodes {
			n, err := core.NewNode(core.Options{K: k, M: m, Rng: xrand.NewChild(seed+1000, i)})
			if err != nil {
				panic(err)
			}
			nodes[i] = n
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		packets := int64(0)
		live := objects
		for live > 0 {
			live = 0
			for i, st := range streams {
				node := nodes[i]
				if node.Complete() {
					continue
				}
				if st.next >= len(st.frames) {
					panic(fmt.Sprintf("stream %d exhausted", i))
				}
				live++
				data := st.frames[st.next]
				st.next++
				rd := bytes.NewReader(data)
				h, err := packet.ReadHeader(rd)
				if err != nil {
					panic(err)
				}
				packets++
				if node.IsRedundant(h.Vec) {
					continue
				}
				pkt, err := packet.ReadPayload(rd, h)
				if err != nil {
					panic(err)
				}
				node.Receive(pkt)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if r == 0 || elapsed.Nanoseconds() < bestNs {
			bestNs = elapsed.Nanoseconds()
			bestPkts = packets
			bestAllocs = float64(after.Mallocs-before.Mallocs) / float64(packets)
		}
	}
	mbps := float64(objects*objectSize) / (1 << 20) / (float64(bestNs) / 1e9)
	fmt.Printf("pre-PR: %.2f MB/s, %.2f allocs/pkt, %d packets, %d ns\n", mbps, bestAllocs, bestPkts, bestNs)
}
