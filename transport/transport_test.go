package transport_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ltnc/transport"
)

// TestSwitchRoundTrip drives the public surface end to end: attach two
// ports, send a frame, receive it with the sender's address, release it.
func TestSwitchRoundTrip(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sw.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public surface")
	if err := a.Send("b", msg); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != transport.Addr("a") || !bytes.Equal(f.Data, msg) {
		t.Fatalf("got frame from %q: %q", f.From, f.Data)
	}
	f.Release()
	if err := a.Send("nobody", msg); !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("send to unknown peer: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

// TestUDPRoundTrip checks the UDP implementation through the public
// package on the loopback interface.
func TestUDPRoundTrip(t *testing.T) {
	a, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	msg := []byte("udp via public package")
	if err := a.Send(b.LocalAddr(), msg); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if f.From != a.LocalAddr() || !bytes.Equal(f.Data, msg) {
		t.Fatalf("got frame from %q: %q", f.From, f.Data)
	}
}

// TestMaxFrame asserts the size bound is enforced through the aliases.
func TestMaxFrame(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sw.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Attach("b"); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, transport.MaxFrame+1)
	if err := a.Send("b", big); !errors.Is(err, transport.ErrFrameTooBig) {
		t.Fatalf("oversized frame: %v", err)
	}
}
