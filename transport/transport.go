// Package transport is the public datagram layer under LTNC
// dissemination: a Transport sends and receives framed packets to and
// from peers identified by opaque addresses. Two implementations ship
// with it —
//
//   - Switch / ChanTransport, an in-memory network with injectable loss,
//     latency, jitter (reordering) and bounded receive queues, fully
//     deterministic from a seed, for tests and simulations;
//   - UDPTransport over a real net.UDPConn, drawing receive buffers from
//     a process-wide pool so the steady-state datagram path does not
//     allocate.
//
// The same session code (ltnc/swarm) runs unchanged over either: swap the
// Switch for real sockets by swapping the Transport. Custom transports
// (QUIC datagrams, an overlay, a broker) plug in by implementing the
// three-method Transport interface.
//
// This package is a facade over internal/transport: the types are
// aliases, so values cross the public/internal boundary freely and
// existing internal users (livenet, session) interoperate with transports
// constructed here.
package transport

import (
	"context"

	"ltnc/internal/transport"
)

// Addr is an opaque peer address. For UDPTransport it is "host:port"; for
// a Switch port it is whatever name the port was attached under.
type Addr = transport.Addr

// Frame is one received datagram. Data is valid until Release is called;
// receivers that keep bytes past Release must copy them.
type Frame = transport.Frame

// Transport sends and receives framed packets. Send must be safe for
// concurrent use with Recv and with other Sends; one consumer at a time
// may call Recv. Delivery is best-effort datagram semantics: no
// retransmission, frames may be dropped, and the frame buffer passed to
// Send belongs to the caller the moment Send returns.
type Transport = transport.Transport

// MaxFrame is the largest frame a Transport must accept.
const MaxFrame = transport.MaxFrame

// Errors shared by transport implementations.
var (
	// ErrClosed is returned once the transport is closed.
	ErrClosed = transport.ErrClosed
	// ErrUnknownPeer is returned when the destination cannot be resolved.
	ErrUnknownPeer = transport.ErrUnknownPeer
	// ErrFrameTooBig is returned for frames exceeding MaxFrame.
	ErrFrameTooBig = transport.ErrFrameTooBig
)

// NewFrame builds a frame with an optional release hook, for custom
// Transport implementations and tests.
func NewFrame(from Addr, data []byte, release func()) Frame {
	return transport.NewFrame(from, data, release)
}

// GetBuf returns a MaxFrame-capacity buffer from the process-wide frame
// pool (full length; reslice as needed). Custom Transport implementations
// use it to serialize and receive without per-datagram allocation; return
// it with PutBuf when the bytes are no longer live.
func GetBuf() *[]byte { return transport.GetBuf() }

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(buf *[]byte) { transport.PutBuf(buf) }

// Clock abstracts the time source behind the timers of the dissemination
// stack (session push ticks, META resend, idle eviction, fetch retries,
// switch latency injection). Production code runs on SystemClock;
// simulations inject a VClock so protocol time is virtual — see
// ltnc/simlab.
type Clock = transport.Clock

// Ticker is a Clock's periodic timer; Timer its one-shot form.
type Ticker = transport.Ticker
type Timer = transport.Timer

// SystemClock returns the real wall clock — the default Clock everywhere
// one is injectable.
func SystemClock() Clock { return transport.SystemClock() }

// VClock is a virtual clock: time stands still until Advance moves it,
// firing every timer crossed in deadline order. The whole dissemination
// stack runs on it unchanged (swarm.Config.Clock), which is how the
// simulation lab compresses minutes of protocol time into milliseconds.
type VClock = transport.VClock

// NewVClock returns a virtual clock frozen at VClockBase.
func NewVClock() *VClock { return transport.NewVClock() }

// SwitchConfig parameterizes the in-memory network: loss rate, fixed
// latency, jitter (which reorders), per-port queue depth, the seed
// driving the loss coin, and the clock delays are scheduled on.
type SwitchConfig = transport.SwitchConfig

// Switch is an in-memory datagram network: a set of named ports with
// configurable loss, latency, jitter and queue depth. It is the
// deterministic test double for real sockets — the same session code runs
// over a Switch port or a UDPTransport.
type Switch = transport.Switch

// ChanTransport is one port of a Switch.
type ChanTransport = transport.ChanTransport

// NewSwitch builds an in-memory network.
func NewSwitch(cfg SwitchConfig) (*Switch, error) { return transport.NewSwitch(cfg) }

// UDPTransport implements Transport over UDP sockets with pooled
// receive buffers. On Linux amd64/arm64 it runs a batched fast path —
// recvmmsg/sendmmsg with UDP GSO/GRO segmentation offload where the
// kernel accepts it, optional SO_REUSEPORT receive sharding — probed at
// socket setup with silent fallback to the portable per-frame path.
type UDPTransport = transport.UDPTransport

// UDPConfig tunes the UDP transport: receive shard count, frames per
// batched syscall, per-reader ring capacity, and switches forcing the
// portable path or disabling GSO/GRO individually. The zero value is
// the ListenUDP default.
type UDPConfig = transport.UDPConfig

// UDPStats is a snapshot of a UDPTransport's self-maintained syscall
// and frame counters plus the capabilities socket setup probing found.
type UDPStats = transport.UDPStats

// ListenUDP opens a UDP transport bound to addr ("127.0.0.1:0" picks a
// free port; query LocalAddr for the result) with the default config.
func ListenUDP(addr string) (*UDPTransport, error) { return transport.ListenUDP(addr) }

// ListenUDPConfig opens a UDP transport with explicit batching, shard
// and offload settings.
func ListenUDPConfig(addr string, cfg UDPConfig) (*UDPTransport, error) {
	return transport.ListenUDPConfig(addr, cfg)
}

// BatchSender is optionally implemented by transports that can hand a
// whole per-peer batch to the kernel in fewer syscalls than per-frame
// Send calls.
type BatchSender = transport.BatchSender

// BatchRecver is optionally implemented by transports that can surface
// every already-queued frame in one call.
type BatchRecver = transport.BatchRecver

// SendBatch sends frames to one peer through t's BatchSender fast path
// when it has one, else by per-frame Send calls. It returns how many
// frames were handed to the network before the first error.
func SendBatch(t Transport, to Addr, frames [][]byte) (int, error) {
	return transport.SendBatch(t, to, frames)
}

// RecvBatch fills out with received frames — whole batches per call on
// transports implementing BatchRecver, one frame per call elsewhere —
// blocking only for the first frame.
func RecvBatch(ctx context.Context, t Transport, out []Frame) (int, error) {
	return transport.RecvBatch(ctx, t, out)
}

// Coalescer gathers outgoing frames per destination inside one flush
// window and hands each peer's gathering to SendBatch in bounded
// bursts; frames serialize into pooled slabs via Stage/Commit, so
// batching adds no copy to the send path. Not safe for concurrent use.
type Coalescer = transport.Coalescer

// NewCoalescer builds a coalescer over t. flushFrames bounds how many
// frames may pend for one peer before an early flush (0 means
// DefaultFlushFrames).
func NewCoalescer(t Transport, flushFrames int) *Coalescer {
	return transport.NewCoalescer(t, flushFrames)
}

// DefaultFlushFrames is the Coalescer's default per-peer flush window.
const DefaultFlushFrames = transport.DefaultFlushFrames
