package ltnc_test

import (
	"bytes"
	"fmt"

	"ltnc"
)

// Example shows the minimal LTNC pipeline: a source encodes content, an
// intermediary recodes it without holding the full content, and a sink
// decodes with belief propagation.
func Example() {
	content := bytes.Repeat([]byte("network coding without Gauss "), 40)

	src, err := ltnc.NewSource(content, 32, ltnc.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	relay, err := ltnc.NewNode(src.K(), src.M(), ltnc.WithSeed(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	sink, err := ltnc.NewNode(src.K(), src.M(), ltnc.WithSeed(3))
	if err != nil {
		fmt.Println(err)
		return
	}

	for !sink.Complete() {
		relay.Receive(src.Packet())
		if p, ok := relay.Recode(); ok && !sink.IsRedundant(p) {
			sink.Receive(p)
		}
	}
	got, err := sink.Bytes(len(content))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("recovered:", bytes.Equal(got, content))
	// Output: recovered: true
}

// ExampleNode_SmartRecode shows the full feedback channel: the receiver
// ships its connected-components map, and the sender constructs a packet
// guaranteed to be innovative (Algorithm 4).
func ExampleNode_SmartRecode() {
	content := make([]byte, 640)
	src, err := ltnc.NewSource(content, 16, ltnc.WithSeed(4))
	if err != nil {
		fmt.Println(err)
		return
	}
	sink, err := ltnc.NewNode(src.K(), src.M(), ltnc.WithSeed(5))
	if err != nil {
		fmt.Println(err)
		return
	}
	p, ok := src.SmartRecode(sink.Components())
	fmt.Println("found:", ok, "degree:", p.Degree(), "innovative:", sink.Receive(p))
	// Output: found: true degree: 1 innovative: true
}

// ExampleWritePacket demonstrates the code-vector-first wire format that
// lets a receiver abort redundant transfers before the payload.
func ExampleWritePacket() {
	content := bytes.Repeat([]byte{0xAB}, 256)
	src, err := ltnc.NewSource(content, 8, ltnc.WithSeed(6))
	if err != nil {
		fmt.Println(err)
		return
	}
	var wire bytes.Buffer
	if err := ltnc.WritePacket(&wire, src.Packet()); err != nil {
		fmt.Println(err)
		return
	}
	h, err := ltnc.ReadPacketHeader(&wire)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("header read, payload still buffered:", wire.Len() == h.M)
	// Output: header read, payload still buffered: true
}
