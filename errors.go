package ltnc

import (
	"ltnc/internal/lt"
	"ltnc/internal/packet"
)

// Typed errors returned at the public API boundary. Each is (or wraps) the
// sentinel used by the internal substrate that detects the condition, so
// errors.Is works across layers: an error from Node.Bytes, ReadPacket or
// swarm.Session matches these sentinels no matter which package built it.
var (
	// ErrIncomplete is returned when decoded content (Natives, Bytes) is
	// requested before all k native packets are recovered.
	ErrIncomplete = lt.ErrIncomplete

	// ErrBadPacket is returned when wire input cannot be decoded as a
	// packet: bad magic, unsupported version, or a corrupt header. The
	// specific causes (packet.ErrBadMagic et al.) all wrap it.
	ErrBadPacket = packet.ErrBadPacket

	// ErrContentSize is returned when content cannot be split into or
	// joined from k native packets as requested (k < 1, empty content,
	// ragged native sizes, size exceeding capacity).
	ErrContentSize = lt.ErrContentSize

	// ErrBadGeneration is returned when a packet's generation structure
	// is inconsistent: a wire header whose generation id is outside
	// [0, G), a generation count out of bounds, or a count that
	// disagrees with the receiver's decode state for the object. It
	// wraps ErrBadPacket, so boundary code that classifies malformed
	// input by the parent sentinel keeps working.
	ErrBadGeneration = packet.ErrBadGeneration
)
