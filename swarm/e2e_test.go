package swarm_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"ltnc/swarm"
)

// TestLoopbackEndToEnd wires the public API into the acceptance topology:
// source session → recoding relay → fetch client, over real UDP sockets
// on 127.0.0.1, transferring a >1 MiB object byte-identically. The relay
// is a genuine intermediary: the client subscribes at the relay, never at
// the source, so every byte it decodes travelled through the relay's
// recode path (sessions only emit packets produced by the recoder, never
// raw forwards; see the vec-capture test in internal/session for the
// packet-level proof).
func TestLoopbackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second UDP transfer")
	}
	const (
		size = 1280 * 1024 // 1.25 MiB
		k    = 1024
	)
	content := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(content)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Relay first (no peers: it learns the object from the source's push).
	relay := startNode(t, ctx, swarm.Config{
		Listen: "127.0.0.1:0",
		Relay:  true,
		Seed:   2,
		Tick:   500 * time.Microsecond,
		Burst:  4,
	})

	// Source pushes toward the relay only.
	src := startNode(t, ctx, swarm.Config{
		Listen: "127.0.0.1:0",
		Peers:  []swarm.Addr{relay.LocalAddr()},
		Seed:   3,
		Tick:   500 * time.Microsecond,
		Burst:  4,
	})
	id, err := src.Serve(content, k)
	if err != nil {
		t.Fatal(err)
	}
	if id != swarm.ContentID(content) {
		t.Fatal("served id does not match content hash")
	}

	// Fetch from the relay, never the source.
	client := startNode(t, ctx, swarm.Config{
		Listen: "127.0.0.1:0",
		Seed:   4,
	})
	got, report, err := client.Fetch(ctx, id, relay.LocalAddr())
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch: %d bytes fetched, %d served", len(got), size)
	}
	if report.Overhead() < 1 {
		t.Fatalf("overhead %.3f < 1", report.Overhead())
	}
	t.Logf("fetched %d bytes in %v, overhead %.3f, aborted %d",
		report.Bytes, report.Elapsed, report.Overhead(), report.Stats.Aborted)

	// The relay both consumed the source's stream and emitted recoded
	// packets of its own.
	rstats, ok := relay.Object(id)
	if !ok {
		t.Fatal("relay holds no state for the object")
	}
	if rstats.Received == 0 {
		t.Fatal("relay received nothing from the source")
	}
	if rstats.Sent == 0 {
		t.Fatal("relay recoded nothing toward the client")
	}
	t.Logf("relay: received %d, sent %d recoded, decoded %d/%d",
		rstats.Received, rstats.Sent, rstats.Decoded, rstats.K)
}

// TestBootstrapEndToEnd joins a swarm through the membership plane over
// real UDP sockets: the client is configured with nothing but a
// bootstrap address — no peers, no explicit fetch source — and must
// discover the swarm via MEMBER shuffles and fetch byte-identically
// through whatever neighbors gossip surfaces.
func TestBootstrapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second UDP transfer")
	}
	const (
		size = 96 * 1024
		k    = 256
	)
	content := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(content)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	src := startNode(t, ctx, swarm.Config{
		Listen: "127.0.0.1:0",
		Seed:   5,
		Tick:   500 * time.Microsecond,
		Burst:  4,
	})
	id, err := src.Serve(content, k)
	if err != nil {
		t.Fatal(err)
	}
	// A relay that itself joined via the bootstrap node.
	relay := startNode(t, ctx, swarm.Config{
		Listen:    "127.0.0.1:0",
		Relay:     true,
		Bootstrap: []swarm.Addr{src.LocalAddr()},
		Seed:      6,
		Tick:      500 * time.Microsecond,
		Burst:     4,
	})
	client := startNode(t, ctx, swarm.Config{
		Listen:    "127.0.0.1:0",
		Bootstrap: []swarm.Addr{src.LocalAddr()},
		Seed:      7,
	})

	got, report, err := client.Fetch(ctx, id) // no source: membership steering
	if err != nil {
		t.Fatalf("bootstrap fetch: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch: %d bytes fetched, %d served", len(got), size)
	}
	t.Logf("fetched %d bytes in %v via bootstrap, overhead %.3f",
		report.Bytes, report.Elapsed, report.Overhead())

	// The shuffles must eventually give the client a view of the swarm.
	deadline := time.Now().Add(30 * time.Second)
	for len(client.Neighbors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never selected neighbors from its view")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = relay
}
