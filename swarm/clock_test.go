package swarm_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"ltnc/swarm"
	"ltnc/transport"
)

// TestVirtualClockThroughPublicAPI pins the public clock plumbing: a
// swarm session configured with a transport.VClock makes progress only
// when virtual time is advanced, and a full source → fetcher transfer
// completes under manual advancement.
func TestVirtualClockThroughPublicAPI(t *testing.T) {
	clk := transport.NewVClock()
	clk.SetSyncGrace(2 * time.Millisecond)
	sw, err := transport.NewSwitch(transport.SwitchConfig{QueueDepth: 256, Seed: 3, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name transport.Addr) *swarm.Session {
		port, err := sw.Attach(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := swarm.New(swarm.Config{
			Transport: port,
			Tick:      5 * time.Millisecond,
			Clock:     clk,
			Seed:      int64(len(name)) + 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.Run(context.Background())
		}()
		t.Cleanup(func() {
			s.Close()
			<-done
		})
		return s
	}
	src := mk("source")
	fetcher := mk("fetcher")

	content := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(content)
	id, err := src.Serve(content, 64)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type result struct {
		data []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		data, _, err := fetcher.Fetch(ctx, id, "source")
		got <- result{data, err}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for {
		select {
		case r := <-got:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if string(r.data) != string(content) {
				t.Fatalf("fetched bytes differ")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("fetch did not complete under virtual advancement")
		}
		clk.Advance(5 * time.Millisecond)
		time.Sleep(200 * time.Microsecond)
	}
}
