// Package swarm is the public face of LTNC dissemination: a Session
// multiplexes many content objects over one datagram transport, serves
// objects it holds, recodes objects it relays — the paper's contribution,
// fresh LT-shaped packets generated from a partial, encoded view — and
// fetches objects from peers, refusing redundant payloads on the code
// vector in the header (Section III-C-2's binary feedback).
//
// A session runs over any ltnc/transport.Transport: real UDP sockets via
// transport.ListenUDP (or Config.Listen), or the deterministic in-memory
// transport.Switch for tests and simulations. The same session code backs
// both, as well as the ltnc-serve and ltnc-fetch commands.
//
// Minimal fetch client:
//
//	s, _ := swarm.New(swarm.Config{Listen: "0.0.0.0:0", Peers: []swarm.Addr{"relay:4980"}})
//	ctx, cancel := context.WithCancel(context.Background())
//	go s.Run(ctx)
//	defer func() { cancel(); s.Close() }()
//	content, report, err := s.Fetch(ctx, id)
//
// Minimal source:
//
//	s, _ := swarm.New(swarm.Config{Listen: ":4980"})
//	id, _ := s.Serve(content, 1024)
//	s.Run(ctx) // pushes to subscribers and configured peers until cancelled
//
// This package is a facade over internal/session, which in turn drives
// the internal decode engine (arena-backed belief propagation, sharded
// decode workers, batched ingestion); see DESIGN.md §9 for the layering.
package swarm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"ltnc"
	"ltnc/internal/cache"
	"ltnc/internal/packet"
	"ltnc/internal/session"
	"ltnc/transport"
)

// Addr is a peer address on the session's transport (re-exported from
// ltnc/transport for convenience).
type Addr = transport.Addr

// ObjectID is the 16-byte content identifier carried in every v2 packet
// header; it is derived from the content bytes, so any holder of the
// content derives the same ID.
type ObjectID = packet.ObjectID

// ContentID derives the ObjectID of a piece of content. Serving the same
// bytes anywhere yields this ID.
func ContentID(content []byte) ObjectID { return packet.NewObjectID(content) }

// ParseObjectID parses the 32-hex-digit form printed by ObjectID.String
// (and by ltnc-serve).
func ParseObjectID(s string) (ObjectID, error) { return packet.ParseObjectID(s) }

// ObjectStats is a point-in-time view of one object's session state; its
// Overhead method reports received packets relative to k — the reception
// overhead the paper calls 1 + ε. For generation-coded objects the
// Generations/KPer fields give the geometry and GensComplete/GenDecoded
// the per-generation decode progress.
type ObjectStats = session.ObjectStats

// CacheStats is a point-in-time view of a cache-mode session's partial
// cache: byte occupancy against the budget, held objects/generations/
// rows, and the admission/eviction/serving counters.
type CacheStats = cache.Stats

// Errors returned by Session methods.
var (
	// ErrClosed is returned once the session (or its transport) is closed.
	ErrClosed = transport.ErrClosed
	// ErrNoPeers is returned by Fetch when it has nowhere to send the
	// request: no explicit source and no configured peers.
	ErrNoPeers = session.ErrNoPeers
	// ErrPolluted is wrapped by Fetch when pollution defense has convicted
	// every candidate peer of serving forged packets: there is no one left
	// to ask, so the fetch fails fast instead of spinning until ctx dies.
	// Partial damage short of that travels in FetchReport.Stats (Polluted,
	// GensVerified, HaveManifest); BannedPeers lists the convicts.
	ErrPolluted = session.ErrPolluted
)

// Config parameterizes a Session. The zero value of every field selects a
// sensible default; only the transport — either Transport or Listen —
// must be provided.
type Config struct {
	// Transport carries the session's frames: a Switch port, a
	// UDPTransport, or any custom Transport. The session takes ownership
	// and closes it on Close.
	Transport transport.Transport
	// Listen, when Transport is nil, binds a fresh UDP transport to this
	// address ("127.0.0.1:0" picks a free port; query LocalAddr).
	Listen string
	// UDPReaders, when Listen is used, sets the receive shard count of
	// the bound UDP transport: on the Linux batched fast path each shard
	// is an SO_REUSEPORT socket drained by its own reader, so
	// independent peer flows spread across cores. 0 or 1 means a single
	// shard; ignored when Transport is provided.
	UDPReaders int
	// Peers are standing push/fetch targets, as if AddPeer were called
	// for each: every locally known object is pushed toward them, and
	// Fetch without an explicit source asks them.
	Peers []Addr
	// Bootstrap enables the epidemic membership plane: the session
	// introduces itself to these addresses, learns the rest of the swarm
	// through periodic PEX view shuffles, and steers pushes and fetch
	// requests at gossip-discovered neighbors in addition to Peers. A
	// Fetch with no explicit source then works against the live view, so
	// a node needs only one reachable bootstrap address to join a swarm
	// of any size; per-peer membership state stays bounded regardless.
	// See Session.Neighbors. Empty (the default) disables membership.
	Bootstrap []Addr
	// Relay makes the session create decode state for objects it first
	// learns about from the network and re-push recoded packets of them —
	// the paper's recoding intermediary. Fetch-only clients leave it
	// false and decode only objects they asked for.
	Relay bool
	// Tick is the push period (default 2ms).
	Tick time.Duration
	// Burst is how many packets are pushed per object, target and tick
	// (default 1).
	Burst int
	// Aggressiveness gates recoding as in the paper (default 0.01): a
	// relay starts recoding an object once it holds K·Aggressiveness + 1
	// packets.
	Aggressiveness float64
	// IdleTimeout evicts object state untouched for this long (default
	// 60s). Locally served objects and objects with blocked fetches stay.
	IdleTimeout time.Duration
	// MaxObjects bounds how many objects a relay will learn from the
	// network (default 1024); MaxK bounds the code length it accepts from
	// network headers (default 65536).
	MaxObjects int
	MaxK       int
	// Generations is the coding-generation count G that Serve splits
	// objects into — the paper's generations optimization, and what
	// makes large objects practical: each generation is decoded and
	// recoded independently, so code vectors, per-packet headers and
	// decode state are all O(k/G) instead of O(k), and a receiver's
	// completed generations abort their redundancy streams while the
	// rest keep filling. 0 (the default) picks G automatically from the
	// object's code length (G = ceil(k/1024), so headers stay bounded no
	// matter how big the object); 1 forces single-generation coding;
	// any other value is used as given. ltnc.WithGenerations in Node
	// overrides it. Serve rounds k up to a multiple of G.
	Generations int
	// DecodeWorkers, IngestBatch and IngestQueue tune the sharded decode
	// engine: how many decode shards run (default min(GOMAXPROCS, 8)),
	// how many DATA frames a worker drains per wakeup (default 32), and
	// each worker's inbound queue bound (default 64; frames over it are
	// dropped, as a datagram network would under overload — see
	// IngestDropped).
	DecodeWorkers int
	IngestBatch   int
	IngestQueue   int
	// Seed drives the session's randomness; per-object decode states
	// derive independent sub-streams from it. Zero draws a fresh entropy
	// seed (ltnc.EntropySeed), so independently deployed nodes never
	// emit identical coded streams; set Seed (or ltnc.WithSeed in Node)
	// for reproducible tests and simulations.
	Seed int64
	// CacheBudget, when positive, turns the session into a partial edge
	// cache: objects first heard from the network are retained as
	// innovative coded rows under this global byte budget — admitted only
	// when they raise a generation's rank, evicted whole generations at a
	// time by demand recency × innovation density — and served to
	// requesters by recoding from the cached rows, without ever decoding.
	// Mutually exclusive with Relay (a cache deliberately holds no decode
	// state). See Session.CacheStats.
	CacheBudget int64
	// Node carries the root package's functional options to every
	// per-object decode state the session creates — the same vocabulary
	// NewNode and NewSource accept. ltnc.WithSeed overrides Seed;
	// ltnc.WithRefinement(false) and ltnc.WithRedundancyDetection(false)
	// disable the corresponding algorithms (experiments only).
	Node []ltnc.Option
	// Adaptive turns on the feedback-driven adaptive coding loop: the
	// session emits receipt reports for what it receives, estimates
	// per-peer link loss from the reports it gets back, and tunes its
	// push path online — a systematic first pass of plain native rows
	// per generation, a loss-scaled redundancy budget, and per-peer
	// Robust Soliton parameters off a precomputed ladder. Off by
	// default: a non-adaptive session's wire behavior is unchanged.
	Adaptive bool
	// Clock is the time source behind every session timer — push ticks,
	// META resend, idle eviction, fetch retries. Default: the system
	// clock (transport.SystemClock). Simulations inject a virtual clock
	// so a minute of protocol time passes in milliseconds of wall time;
	// see ltnc/simlab.
	Clock transport.Clock
	// Logf, when set, receives one line per notable event (object
	// learned, complete, evicted).
	Logf func(format string, args ...any)
}

// sessionConfig lowers the public Config onto the internal session
// configuration, folding in the already-compiled Node options.
func (c Config) sessionConfig(tr transport.Transport, nc ltnc.NodeConfig) session.Config {
	seed := c.Seed
	haveSeed := nc.Seeded
	switch {
	case nc.Seeded:
		seed = nc.Seed
	case seed == 0:
		// No seed anywhere: independent sessions must not share the
		// internal default stream, or peers serving the same object
		// would push pairwise-duplicate packets.
		seed = ltnc.EntropySeed()
		haveSeed = true
	}
	return session.Config{
		Transport:              tr,
		Bootstrap:              c.Bootstrap,
		Tick:                   c.Tick,
		Burst:                  c.Burst,
		Aggressiveness:         c.Aggressiveness,
		IdleTimeout:            c.IdleTimeout,
		Relay:                  c.Relay,
		MaxObjects:             c.MaxObjects,
		MaxK:                   c.MaxK,
		DecodeWorkers:          c.DecodeWorkers,
		IngestBatch:            c.IngestBatch,
		IngestQueue:            c.IngestQueue,
		CacheBudget:            c.CacheBudget,
		Adaptive:               c.Adaptive,
		Seed:                   seed,
		HaveSeed:               haveSeed,
		DisableRefinement:      nc.DisableRefinement,
		DisableRedundancyCheck: nc.DisableRedundancyDetection,
		Clock:                  c.Clock,
		Logf:                   c.Logf,
	}
}

// Session is one LTNC dissemination participant — source, relay, fetch
// client, or all three at once. Create with New, drive with Run, then
// Serve objects and Fetch them concurrently; every method is safe for
// concurrent use.
type Session struct {
	s *session.Session
	// clk is the session's resolved time source; FetchReport.Elapsed is
	// measured on it, so a virtual-clocked session reports virtual
	// transfer time.
	clk transport.Clock
	// generations is the configured G preference: 0 = automatic.
	generations int
}

// New builds a session from cfg. Call Run to start it; Close when done.
func New(cfg Config) (*Session, error) {
	nc := ltnc.CompileOptions(cfg.Node...)
	gens := cfg.Generations
	if nc.Generations != 0 {
		gens = nc.Generations
	}
	if gens < 0 {
		return nil, fmt.Errorf("swarm: %w: G = %d < 0", ltnc.ErrBadGeneration, gens)
	}
	tr := cfg.Transport
	if tr == nil {
		if cfg.Listen == "" {
			return nil, fmt.Errorf("swarm: config needs a Transport or a Listen address")
		}
		var err error
		if tr, err = transport.ListenUDPConfig(cfg.Listen, transport.UDPConfig{Readers: cfg.UDPReaders}); err != nil {
			return nil, err
		}
	}
	s, err := session.New(cfg.sessionConfig(tr, nc))
	if err != nil {
		tr.Close() // ownership transferred with the Config, error or not
		return nil, err
	}
	for _, p := range cfg.Peers {
		s.AddPeer(p)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = transport.SystemClock()
	}
	return &Session{s: s, clk: clk, generations: gens}, nil
}

// Run pumps the session until ctx ends or the session is closed: it
// receives and dispatches frames, decodes DATA bursts on the sharded
// worker pool, pushes recoded packets every tick and evicts idle state.
// It returns nil on clean shutdown — Close, cancellation, or ctx's
// deadline expiring; bounding the run with a deadline is a supported way
// to stop it.
func (s *Session) Run(ctx context.Context) error {
	err := s.s.Run(ctx)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

// Close stops Run and closes the underlying transport. Blocked Fetches
// fail with ErrClosed.
func (s *Session) Close() error { return s.s.Close() }

// LocalAddr returns the address peers use to reach this session.
func (s *Session) LocalAddr() Addr { return s.s.LocalAddr() }

// AddPeer registers a standing push/fetch target: every locally known
// object is pushed toward it, and Fetch without an explicit source asks
// it.
func (s *Session) AddPeer(addr Addr) { s.s.AddPeer(addr) }

// Neighbors returns the gossip-selected active neighbor set the
// membership plane currently steers fetch requests at — a
// capacity-weighted draw from the bounded partial view, refreshed every
// shuffle round. It returns nil when Config.Bootstrap is empty
// (membership disabled) and may be empty before the first shuffle
// completes.
func (s *Session) Neighbors() []Addr { return s.s.Neighbors() }

// autoKPer is the per-generation code length automatic chunking aims at:
// G = ceil(k/1024) keeps every wire header's code vector at or under 128
// bytes — O(k/G), independent of how large the object grows — while each
// generation stays large enough for the Soliton distribution to behave.
const autoKPer = 1024

// pickGenerations resolves the session's G preference for an object of
// code length k.
func (s *Session) pickGenerations(k int) int {
	if s.generations > 0 {
		return s.generations
	}
	return max(1, (k+autoKPer-1)/autoKPer)
}

// Serve splits content into k native packets across G independently
// coded generations, seeds a source state and returns the
// content-derived ObjectID. G comes from Config.Generations (or
// ltnc.WithGenerations); by default it scales with k so per-packet
// headers and per-generation decode state stay bounded — this is what
// lets a session serve multi-MB/GB objects. k is rounded up to a
// multiple of G. The object is pushed to configured peers and to anyone
// who requests it, and is pinned against idle eviction. Serving an
// object someone is already fetching or watching completes those
// subscriptions immediately.
func (s *Session) Serve(content []byte, k int) (ObjectID, error) {
	return s.s.Serve(content, k, s.pickGenerations(k))
}

// ServeReader reads r to EOF and serves the bytes as one object; see
// Serve.
func (s *Session) ServeReader(r io.Reader, k int) (ObjectID, error) {
	content, err := io.ReadAll(r)
	if err != nil {
		return ObjectID{}, fmt.Errorf("swarm: read content: %w", err)
	}
	return s.Serve(content, k)
}

// ServeFile serves the contents of the file at path as one object; see
// Serve. Together with the automatic generation choice this is the
// large-file entry point: a file served with k = size/4096 natives gets
// G = ceil(k/1024) generations and constant-size headers regardless of
// file size.
func (s *Session) ServeFile(path string, k int) (ObjectID, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return ObjectID{}, err
	}
	return s.Serve(content, k)
}

// FetchReport summarizes a completed (or failed) fetch.
type FetchReport struct {
	// Bytes is the recovered content length.
	Bytes int
	// Elapsed is the transfer time on the session's clock — wall time by
	// default, virtual time when Config.Clock injects a virtual clock.
	Elapsed time.Duration
	// Stats carries the decode-side counters at completion;
	// Stats.Overhead() is the paper's reception overhead (received
	// packets / k). Under pollution defense it also reports integrity
	// state: HaveManifest, GensVerified, and Polluted (quarantine events
	// survived on the way to completion).
	Stats ObjectStats
}

// Overhead is shorthand for Stats.Overhead — received packets relative to
// k, the paper's 1 + ε.
func (r FetchReport) Overhead() float64 { return r.Stats.Overhead() }

// Fetch subscribes to object id, blocks until the decode completes and
// returns the content. The request goes to every address in from — or,
// when none is given, to every configured peer (ErrNoPeers with neither).
// Requests are resent periodically until the transfer finishes, ctx
// expires, or the session closes; the report is meaningful even on error.
func (s *Session) Fetch(ctx context.Context, id ObjectID, from ...Addr) ([]byte, FetchReport, error) {
	start := s.clk.Now()
	content, stats, err := s.s.Fetch(ctx, id, from...)
	report := FetchReport{Bytes: len(content), Elapsed: s.clk.Since(start), Stats: stats}
	if err != nil {
		return nil, report, err
	}
	return content, report, nil
}

// Watch subscribes fn to object id's progress: it is invoked once
// immediately with a snapshot, then again whenever the object's decode
// state advances — innovative packets ingested, metadata learned,
// completion. Snapshots reach fn in monotone order (a Complete snapshot
// is never followed by an older one). Callbacks run on session
// goroutines, serialized per object; they must not block and must not
// call Watch or Subscribe synchronously for any object (spawn a
// goroutine for that; cancel is fine) — consume through Subscribe's
// channel when in doubt. Watching an unknown object is
// allowed (the session registers it and decodes once packets arrive);
// watchers do not pin state against idle eviction. cancel unregisters
// fn.
func (s *Session) Watch(id ObjectID, fn func(ObjectStats)) (cancel func()) {
	return s.s.Watch(id, fn)
}

// Subscribe is the channel form of Watch: progress snapshots of object id
// are delivered on the returned channel, which has the given buffer
// capacity (minimum 1). Deliveries never block: when the consumer lags
// and the buffer is full, the OLDEST buffered snapshot is dropped to make
// room for the newest, so the most recent snapshot — including the
// terminal Complete one — is always the one retained. The channel is
// never closed; cancel stops deliveries.
func (s *Session) Subscribe(id ObjectID, buffer int) (<-chan ObjectStats, func()) {
	ch := make(chan ObjectStats, max(buffer, 1))
	cancel := s.s.Watch(id, func(o ObjectStats) {
		for {
			select {
			case ch <- o:
				return
			default:
			}
			// Full: evict one stale snapshot and retry. The loop
			// terminates because each round either delivers o or shrinks
			// the buffer (concurrent consumers only help).
			select {
			case <-ch:
			default:
			}
		}
	})
	return ch, cancel
}

// Stats returns a snapshot of every object the session currently holds.
func (s *Session) Stats() []ObjectStats { return s.s.Objects() }

// Object returns the snapshot of one object and whether the session holds
// it.
func (s *Session) Object(id ObjectID) (ObjectStats, bool) {
	return s.s.Object(id)
}

// BannedPeers lists the peers this session has convicted of pollution —
// peers whose packets failed integrity verification against an object's
// manifest. Banned peers are neither served nor asked again; a fetch
// whose every candidate is banned fails with ErrPolluted.
func (s *Session) BannedPeers() []Addr { return s.s.BannedPeers() }

// CacheStats returns the partial cache's occupancy and policy counters;
// ok is false unless the session was configured with Config.CacheBudget.
func (s *Session) CacheStats() (CacheStats, bool) { return s.s.CacheStats() }

// IngestDropped returns the number of DATA frames dropped at full decode
// worker queues — the receiver-overload counter; see Config.IngestQueue.
func (s *Session) IngestDropped() int64 { return s.s.IngestDropped() }
