package swarm_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ltnc/internal/packet"
	"ltnc/swarm"
	"ltnc/transport"
)

// headerTap wraps a transport and records, for every DATA frame received,
// the parsed wire view and the header size in bytes (frame length minus
// the session type byte and the payload). It proves the O(k/G) header
// property on the actual wire traffic rather than on size formulas.
type headerTap struct {
	transport.Transport
	mu      sync.Mutex
	headers []int
	kPers   []int
	gens    []uint32
	genIDs  []uint32
}

func (h *headerTap) Recv(ctx context.Context) (transport.Frame, error) {
	f, err := h.Transport.Recv(ctx)
	if err != nil || len(f.Data) == 0 || f.Data[0] != 0x01 { // session DATA frame type
		return f, err
	}
	if wv, perr := packet.ParseWire(f.Data[1:]); perr == nil {
		h.mu.Lock()
		h.headers = append(h.headers, len(f.Data)-1-wv.M)
		h.kPers = append(h.kPers, wv.K)
		h.gens = append(h.gens, wv.Generations)
		h.genIDs = append(h.genIDs, wv.Generation)
		h.mu.Unlock()
	}
	return f, err
}

// TestGenerationLargeObjectE2E is the generation acceptance topology: an
// 8 MiB object served as G=8 generations (picked automatically from
// k=8192), pushed through a recoding relay over a lossy, jittery Switch,
// fetched byte-identically — with every DATA header observed at the
// client asserted to be O(k/G): sized by the per-generation code length
// k/G = 1024, independent of the object's total k.
func TestGenerationLargeObjectE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second 8 MiB transfer")
	}
	const (
		size = 8 * 1024 * 1024 // 8 MiB
		k    = 8192            // m = 1 KiB natives; auto G = ceil(k/1024) = 8
		gens = 8
		kPer = k / gens
	)
	sw, err := transport.NewSwitch(transport.SwitchConfig{
		LossRate:   0.02,
		Latency:    100 * time.Microsecond,
		Jitter:     500 * time.Microsecond, // reorders across generations
		QueueDepth: 512,
		Seed:       41,
	})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, size)
	rand.New(rand.NewSource(4242)).Read(content)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	relay := startNode(t, ctx, swarm.Config{
		Transport: attach(t, sw, "relay"),
		Relay:     true,
		Seed:      51,
		Tick:      250 * time.Microsecond,
		Burst:     16,
	})
	src := startNode(t, ctx, swarm.Config{
		Transport: attach(t, sw, "source"),
		Peers:     []swarm.Addr{"relay"},
		Seed:      52,
		Tick:      250 * time.Microsecond,
		Burst:     16,
	})
	id, err := src.Serve(content, k)
	if err != nil {
		t.Fatal(err)
	}
	srcStats, ok := src.Object(id)
	if !ok || srcStats.Generations != gens || srcStats.KPer != kPer {
		t.Fatalf("automatic generation choice wrong: %+v", srcStats)
	}

	tap := &headerTap{Transport: attach(t, sw, "client")}
	client := startNode(t, ctx, swarm.Config{
		Transport: tap,
		Peers:     []swarm.Addr{"relay"}, // fetch through the relay, never the source
		Seed:      53,
	})

	// Watch snapshots must be monotone in total and per-generation
	// progress even though generations complete in arrival order, not
	// index order.
	var mu sync.Mutex
	var lastDecoded, lastGensComplete, maxGensComplete int
	monotone := true
	stopWatch := client.Watch(id, func(o swarm.ObjectStats) {
		mu.Lock()
		defer mu.Unlock()
		if o.Decoded < lastDecoded || o.GensComplete < lastGensComplete {
			monotone = false
		}
		lastDecoded, lastGensComplete = o.Decoded, o.GensComplete
		if o.GensComplete > maxGensComplete {
			maxGensComplete = o.GensComplete
		}
	})
	defer stopWatch()

	got, report, err := client.Fetch(ctx, id)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch: %d bytes fetched, %d served", len(got), size)
	}
	if report.Stats.Generations != gens || report.Stats.GensComplete != gens {
		t.Fatalf("fetch report generation progress wrong: %+v", report.Stats)
	}

	// The terminal Watch snapshot is delivered asynchronously: Fetch wakes
	// on the done channel, which closes inside the decode path, while the
	// notification dispatches after that batch's locks drop — so give the
	// final snapshot a moment to land before asserting on it.
	watchDeadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		sawAll := maxGensComplete == gens
		mu.Unlock()
		if sawAll || time.Now().After(watchDeadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if !monotone {
		t.Error("watch snapshots regressed across generations")
	}
	if maxGensComplete != gens {
		t.Errorf("watcher saw %d/%d generations complete", maxGensComplete, gens)
	}
	mu.Unlock()

	// The relay genuinely recoded the generation-structured object.
	rstats, ok := relay.Object(id)
	if !ok || rstats.Received == 0 || rstats.Sent == 0 {
		t.Fatalf("relay did not recode: %+v", rstats)
	}
	if rstats.Generations != gens {
		t.Fatalf("relay learned wrong geometry: %+v", rstats)
	}

	// Every DATA header the client saw is O(k/G): vectors span one
	// generation (k/G = 1024 natives), the count travels in-band, and
	// the byte size matches GenHeaderSize(k/G) — a constant independent
	// of total k, where a flat v2 header over k = 8192 would be
	// ObjectHeaderSize(k) bytes (~6x larger).
	tap.mu.Lock()
	defer tap.mu.Unlock()
	if len(tap.headers) == 0 {
		t.Fatal("tap saw no DATA frames")
	}
	wantHeader := packet.GenHeaderSize(kPer)
	for i, hb := range tap.headers {
		if hb != wantHeader {
			t.Fatalf("frame %d: header %d bytes, want %d", i, hb, wantHeader)
		}
		if tap.kPers[i] != kPer || tap.gens[i] != gens || tap.genIDs[i] >= gens {
			t.Fatalf("frame %d: geometry k=%d G=%d gen=%d", i, tap.kPers[i], tap.gens[i], tap.genIDs[i])
		}
	}
	if flat := packet.ObjectHeaderSize(k); wantHeader >= flat {
		t.Fatalf("generation header %dB not smaller than flat header %dB", wantHeader, flat)
	}
	t.Logf("fetched %d bytes in %v, overhead %.3f; %d DATA headers, each %d B (flat would be %d B)",
		report.Bytes, report.Elapsed, report.Overhead(), len(tap.headers),
		wantHeader, packet.ObjectHeaderSize(k))
}
