package swarm_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ltnc"
	"ltnc/swarm"
	"ltnc/transport"
)

// startNode builds a session from cfg, runs it in the background and
// registers cleanup that shuts it down and asserts a clean exit.
func startNode(t *testing.T, ctx context.Context, cfg swarm.Config) *swarm.Session {
	t.Helper()
	s, err := swarm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- s.Run(runCtx) }()
	t.Cleanup(func() {
		cancel()
		s.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("session exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("session did not shut down")
		}
	})
	return s
}

func attach(t *testing.T, sw *transport.Switch, name swarm.Addr) transport.Transport {
	t.Helper()
	tr, err := sw.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSwitchEndToEndAdverse drives a source → recoding relay → client
// topology over the in-memory Switch with every adverse condition at once
// — frame loss, jitter-induced reordering, and a shallow receive queue
// that overflows under the push bursts — and asserts the transfer still
// completes byte-identically with bounded relay memory. The client fetches
// through its configured peer (no explicit source address) and observes
// progress through Subscribe.
func TestSwitchEndToEndAdverse(t *testing.T) {
	const (
		size = 256 * 1024
		k    = 256
	)
	sw, err := transport.NewSwitch(transport.SwitchConfig{
		LossRate:   0.10,
		Latency:    200 * time.Microsecond,
		Jitter:     2 * time.Millisecond, // >> latency: heavy reordering
		QueueDepth: 4,                    // shallow: bursts overflow
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, size)
	rand.New(rand.NewSource(99)).Read(content)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	relay := startNode(t, ctx, swarm.Config{
		Transport:  attach(t, sw, "relay"),
		Relay:      true,
		Seed:       12,
		Tick:       500 * time.Microsecond,
		Burst:      8,
		MaxObjects: 4, // bounded-memory assertion below leans on this
	})
	src := startNode(t, ctx, swarm.Config{
		Transport:   attach(t, sw, "source"),
		Peers:       []swarm.Addr{"relay"},
		Seed:        13,
		Tick:        500 * time.Microsecond,
		Burst:       8,
		Generations: 4, // generations must complete (possibly out of order) under the same adversity
	})
	id, err := src.Serve(content, k)
	if err != nil {
		t.Fatal(err)
	}
	if id != swarm.ContentID(content) {
		t.Fatal("served id does not match content hash")
	}

	client := startNode(t, ctx, swarm.Config{
		Transport: attach(t, sw, "client"),
		Peers:     []swarm.Addr{"relay"}, // fetch asks configured peers
		Seed:      14,
	})
	// Watch sees every notification (no buffer to overflow); Subscribe is
	// the lossy channel form — it may drop snapshots under lag but must
	// deliver at least one.
	var completes atomic.Int64
	stopWatch := client.Watch(id, func(o swarm.ObjectStats) {
		if o.Complete {
			completes.Add(1)
		}
	})
	defer stopWatch()
	events, stop := client.Subscribe(id, 16)
	defer stop()

	got, report, err := client.Fetch(ctx, id)
	if err != nil {
		t.Fatalf("fetch under loss+reorder+overflow: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content mismatch: %d bytes fetched, %d served", len(got), size)
	}
	if report.Overhead() < 1 {
		t.Fatalf("overhead %.3f < 1", report.Overhead())
	}
	if report.Stats.Generations != 4 || report.Stats.GensComplete != 4 {
		t.Fatalf("generation progress wrong under adversity: %+v", report.Stats)
	}
	t.Logf("fetched %d bytes in %v, overhead %.3f (%d generations)",
		report.Bytes, report.Elapsed, report.Overhead(), report.Stats.Generations)

	// Progress must have flowed: the completion notification fires on a
	// decode worker just after Fetch unblocks, so poll briefly for it.
	for deadline := time.Now().Add(10 * time.Second); completes.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("watcher never saw completion")
		}
		time.Sleep(time.Millisecond)
	}
	seen := 0
	for drained := false; !drained; {
		select {
		case <-events:
			seen++
		default:
			drained = true
		}
	}
	if seen == 0 {
		t.Fatal("no progress snapshots delivered on the subscription channel")
	}

	// The adverse conditions must actually have fired.
	if sw.Lost() == 0 {
		t.Fatal("loss injection never dropped a frame")
	}
	if sw.Dropped() == 0 {
		t.Fatal("queue overflow never dropped a frame")
	}
	t.Logf("switch: %d lost, %d overflow-dropped", sw.Lost(), sw.Dropped())

	// Bounded memory: the relay holds only the learned object, and it
	// both consumed the source's stream and emitted recoded packets.
	if objs := relay.Stats(); len(objs) > 4 {
		t.Fatalf("relay state grew to %d objects under churn, bound 4", len(objs))
	}
	rstats, ok := relay.Object(id)
	if !ok {
		t.Fatal("relay never learned the object")
	}
	if rstats.Received == 0 || rstats.Sent == 0 {
		t.Fatalf("relay did not relay: %+v", rstats)
	}
	t.Logf("relay: received %d, sent %d recoded, decoded %d/%d",
		rstats.Received, rstats.Sent, rstats.Decoded, rstats.K)
}

// TestServeReaderAndFile covers the io-native serve surfaces: both must
// derive the same content ID as Serve on the raw bytes.
func TestServeReaderAndFile(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 64*1024)
	rand.New(rand.NewSource(5)).Read(content)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := startNode(t, ctx, swarm.Config{Transport: attach(t, sw, "a")})

	id, err := s.ServeReader(bytes.NewReader(content), 64)
	if err != nil {
		t.Fatal(err)
	}
	if id != swarm.ContentID(content) {
		t.Fatal("ServeReader id mismatch")
	}

	other := append([]byte(nil), content...)
	other[0] ^= 1
	path := filepath.Join(t.TempDir(), "obj.bin")
	if err := os.WriteFile(path, other, 0o644); err != nil {
		t.Fatal(err)
	}
	id2, err := s.ServeFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != swarm.ContentID(other) {
		t.Fatal("ServeFile id mismatch")
	}
	if _, err := s.ServeFile(filepath.Join(t.TempDir(), "missing"), 64); err == nil {
		t.Fatal("missing file accepted")
	}

	stats, ok := s.Object(id)
	if !ok || !stats.Complete || !stats.Pinned {
		t.Fatalf("served object stats: %+v (ok=%v)", stats, ok)
	}
}

// TestWatchBeforeServe registers a watcher for an object the session does
// not hold yet; serving the content later must fire the watcher with a
// complete snapshot (placeholder adoption).
func TestWatchBeforeServe(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := startNode(t, ctx, swarm.Config{Transport: attach(t, sw, "a")})

	content := make([]byte, 16*1024)
	rand.New(rand.NewSource(6)).Read(content)
	id := swarm.ContentID(content)

	var calls, completes atomic.Int64
	cancelWatch := s.Watch(id, func(o swarm.ObjectStats) {
		calls.Add(1)
		if o.Complete {
			completes.Add(1)
		}
	})
	defer cancelWatch()
	if calls.Load() != 1 {
		t.Fatalf("immediate snapshot not delivered (calls=%d)", calls.Load())
	}
	if completes.Load() != 0 {
		t.Fatal("empty placeholder reported complete")
	}

	if _, err := s.Serve(content, 32); err != nil {
		t.Fatalf("serve over watched placeholder: %v", err)
	}
	if completes.Load() == 0 {
		t.Fatal("watcher never saw completion after Serve")
	}

	// A second Serve of the same content is a duplicate.
	if _, err := s.Serve(content, 32); err == nil {
		t.Fatal("duplicate serve accepted")
	}
}

// TestFetchNoPeers asserts the typed error when a fetch has nowhere to
// go.
func TestFetchNoPeers(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s := startNode(t, ctx, swarm.Config{Transport: attach(t, sw, "a")})
	var id swarm.ObjectID
	id[0] = 1
	if _, _, err := s.Fetch(ctx, id); !errors.Is(err, swarm.ErrNoPeers) {
		t.Fatalf("fetch with no peers: %v", err)
	}
}

// TestConfigValidation covers New's error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := swarm.New(swarm.Config{}); err == nil {
		t.Fatal("config without transport or listen accepted")
	}
	if _, err := swarm.New(swarm.Config{Listen: "not an address"}); err == nil {
		t.Fatal("malformed listen address accepted")
	}
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := swarm.New(swarm.Config{Transport: attach(t, sw, "a"), Tick: -time.Second}); err == nil {
		t.Fatal("negative tick accepted")
	}
}

// TestNodeOptionsPlumbing checks that the root package's functional
// options reach the session: a WithSeed override makes two sessions'
// recoded streams deterministic, observed as byte-identical fetches, and
// disabling redundancy detection still converges.
func TestNodeOptionsPlumbing(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 32*1024)
	rand.New(rand.NewSource(7)).Read(content)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	src := startNode(t, ctx, swarm.Config{
		Transport: attach(t, sw, "src"),
		Tick:      500 * time.Microsecond,
		Burst:     4,
		Node:      []ltnc.Option{ltnc.WithSeed(77), ltnc.WithRedundancyDetection(false)},
	})
	id, err := src.Serve(content, 64)
	if err != nil {
		t.Fatal(err)
	}
	client := startNode(t, ctx, swarm.Config{
		Transport: attach(t, sw, "client"),
		Node:      []ltnc.Option{ltnc.WithSeed(78)},
	})
	got, _, err := client.Fetch(ctx, id, "src")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch with node options set")
	}
}

// TestGenerationsConfigPlumbing checks the generation-count resolution
// order — ltnc.WithGenerations beats Config.Generations beats the
// automatic choice — and the typed error for nonsense counts.
func TestGenerationsConfigPlumbing(t *testing.T) {
	sw, err := transport.NewSwitch(transport.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	content := make([]byte, 8*1024)
	rand.New(rand.NewSource(9)).Read(content)

	serveGens := func(name swarm.Addr, cfg swarm.Config, k int) int {
		t.Helper()
		cfg.Transport = attach(t, sw, name)
		s := startNode(t, ctx, cfg)
		id, err := s.Serve(append([]byte(nil), content...), k)
		if err != nil {
			t.Fatal(err)
		}
		stats, ok := s.Object(id)
		if !ok {
			t.Fatal("served object missing")
		}
		return stats.Generations
	}

	if g := serveGens("cfg", swarm.Config{Generations: 4}, 64); g != 4 {
		t.Errorf("Config.Generations: G = %d, want 4", g)
	}
	if g := serveGens("opt", swarm.Config{
		Generations: 4,
		Node:        []ltnc.Option{ltnc.WithGenerations(2)},
	}, 64); g != 2 {
		t.Errorf("WithGenerations override: G = %d, want 2", g)
	}
	// Automatic: small k stays single-generation, large k chunks.
	if g := serveGens("auto-small", swarm.Config{}, 64); g != 1 {
		t.Errorf("auto G for k=64: %d, want 1", g)
	}
	if g := serveGens("auto-large", swarm.Config{}, 4096); g != 4 {
		t.Errorf("auto G for k=4096: %d, want 4", g)
	}

	if _, err := swarm.New(swarm.Config{Listen: "127.0.0.1:0", Generations: -1}); !errors.Is(err, ltnc.ErrBadGeneration) {
		t.Errorf("negative G err = %v, want ltnc.ErrBadGeneration", err)
	}
}
