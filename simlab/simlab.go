// Package simlab is the public face of the deterministic virtual-time
// swarm laboratory: declare a Scenario — a population of real
// dissemination sessions (sources, recoding relays, fetchers) on a shaped
// network fabric plus a timeline of churn, crash, partition and link
// events — and Run it. Time is virtual: a minute of protocol time
// (push ticks, META resend, idle eviction, fetch retries) passes in
// seconds of wall time, and everything the engine randomizes derives from
// the scenario seed, so a run resolves identically from (Seed, Scenario).
//
// The run checks the invariants the dissemination protocol promises and
// reports any breach in Report.Violations: every fetch completes
// byte-identical to the served content, Watch progress is monotone,
// every DATA frame carries exactly the O(k/G) header the generation
// layer promises, reception overhead stays under the scenario bound, and
// the swarm never deadlocks (a wall-clock watchdog backs the virtual
// deadline).
//
// Run a named scenario from the catalog:
//
//	sc, _ := simlab.Named("churn50", 1)
//	rep, err := sc.Run(context.Background())
//	if err != nil || !rep.Ok() { ... }
//
// or declare one:
//
//	sc := simlab.Scenario{
//		Seed: 7, Sources: 1, Relays: 3, Fetchers: 10,
//		Objects: []simlab.ObjectSpec{{Size: 1 << 20, K: 4096, Generations: 4}},
//		Link:    simlab.LinkConfig{Loss: 0.05, Latency: 10 * time.Millisecond},
//		Churn:   simlab.ChurnSpec{Fraction: 0.2},
//	}
//
// The ltnc-sim command exposes the same catalog on the command line
// (`ltnc-sim -scenario churn50`, JSON on stdout). This package is a
// facade over
// internal/simnet; see DESIGN.md §11 for the architecture — the event
// scheduler, the virtual clock contract with ltnc/transport.Clock, and
// the quiescence protocol that keeps virtual time behind the work it
// triggers.
package simlab

import (
	"ltnc/internal/cache"
	"ltnc/internal/simnet"
)

// Scenario declares a virtual-time swarm experiment; see the package
// documentation and the field docs for the vocabulary. The zero value of
// every field selects a sensible default.
type Scenario = simnet.Scenario

// ObjectSpec describes one object served into the swarm: content size,
// code length and generation count.
type ObjectSpec = simnet.ObjectSpec

// LinkConfig shapes one directed link: loss probability, latency, jitter,
// bandwidth and MTU.
type LinkConfig = simnet.LinkConfig

// ChurnSpec generates crash-and-rejoin events over the fetcher
// population.
type ChurnSpec = simnet.ChurnSpec

// Event is one scheduled occurrence on a scenario timeline; EventKind
// discriminates crash, join, partition, heal and link reshaping.
type Event = simnet.Event
type EventKind = simnet.EventKind

// The timeline event kinds.
const (
	EvCrash     = simnet.EvCrash
	EvJoin      = simnet.EvJoin
	EvPartition = simnet.EvPartition
	EvHeal      = simnet.EvHeal
	EvSetLink   = simnet.EvSetLink
)

// Wiring selects how the population is peered: star (fetchers subscribe
// at relays), line (a multihop relay chain), or mesh (every fetcher is
// also a recoding relay).
type Wiring = simnet.Wiring

// The wiring shapes.
const (
	WiringStar = simnet.WiringStar
	WiringLine = simnet.WiringLine
	WiringMesh = simnet.WiringMesh
)

// Report is the outcome of one scenario run; FetchResult one (node,
// object) fetch within it. Report.Ok is the "run was clean" summary;
// Report.Violations itemizes any invariant breach.
type Report = simnet.Report
type FetchResult = simnet.FetchResult

// NetStats aggregates the fabric's frame accounting: sent, delivered and
// every drop cause (loss, MTU, queue overflow, down node, partition).
type NetStats = simnet.Stats

// CacheTierStats snapshots one edge cache's occupancy and policy
// counters in a Report (budget, bytes used, rows, served frames, …).
type CacheTierStats = cache.Stats

// ScenarioInfo summarizes one catalog entry for listings: description
// and resolved population sizes.
type ScenarioInfo = simnet.ScenarioInfo

// List returns the names of the catalog scenarios (churn, partition/heal,
// relay crash, asymmetric uplink, edge cache, soak, …).
func List() []string { return simnet.List() }

// Catalog returns the named scenarios with their descriptions and
// resolved node/object counts, sorted by name.
func Catalog() []ScenarioInfo { return simnet.Catalog() }

// Named returns the catalog scenario with the given name, parameterized
// by seed (0 = the default seed 1). Run it with Scenario.Run.
func Named(name string, seed int64) (Scenario, error) { return simnet.Named(name, seed) }
