package simlab_test

import (
	"context"
	"testing"
	"time"

	"ltnc/simlab"
)

// TestPublicScenarioRoundTrip exercises the lab purely through the public
// surface: a declared scenario with a relay crash and a user-declared
// late joiner on the timeline runs to completion with clean invariants
// (the joiner's peers are resolved by the engine — a declared EvJoin
// must be fetchable without the caller wiring it).
func TestPublicScenarioRoundTrip(t *testing.T) {
	sc := simlab.Scenario{
		Name:    "public-smoke",
		Seed:    11,
		Sources: 1, Relays: 2, Fetchers: 3,
		Objects: []simlab.ObjectSpec{{Size: 12 << 10, K: 48, Generations: 2}},
		Link:    simlab.LinkConfig{Loss: 0.02, Latency: 3 * time.Millisecond},
		Timeline: []simlab.Event{
			{At: 300 * time.Millisecond, Kind: simlab.EvCrash, Node: "r0"},
			{At: 400 * time.Millisecond, Kind: simlab.EvJoin, Node: "late0"},
		},
		MaxOverhead: 6,
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("run not clean: violations %v, %d failed", rep.Violations, rep.FetchesFailed)
	}
	if rep.FetchesCompleted != 4 {
		t.Fatalf("completed %d of 4 fetches (3 initial + 1 late joiner)", rep.FetchesCompleted)
	}
	if rep.VirtualElapsed <= 0 || rep.TimelineHash == "" {
		t.Fatalf("report missing run evidence: %+v", rep)
	}
}

func TestCatalog(t *testing.T) {
	names := simlab.List()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	found := false
	for _, n := range names {
		if n == "churn50" {
			found = true
		}
	}
	if !found {
		t.Fatalf("churn50 missing from catalog %v", names)
	}
	if _, err := simlab.Named("churn50", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := simlab.Named("bogus", 5); err == nil {
		t.Fatal("bogus scenario resolved")
	}
}
