package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ltnc/internal/daemon"
)

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, nil, &out); err == nil {
		t.Error("missing required flags accepted")
	}
	err := run(ctx, []string{"-from", "127.0.0.1:1", "-id", "nothex", "-out", "x"}, &out)
	if err == nil {
		t.Error("malformed object id accepted")
	}
	err = run(ctx, []string{"-from", "127.0.0.1:1", "-id", "abcd", "-out", "x"}, &out)
	if err == nil {
		t.Error("short object id accepted")
	}
}

// TestFetchCLI serves an object with the daemon package and retrieves it
// through the ltnc-fetch CLI entry point, checking the written file and
// the overhead report.
func TestFetchCLI(t *testing.T) {
	content := make([]byte, 64*1024)
	rand.New(rand.NewSource(3)).Read(content)
	path := filepath.Join(t.TempDir(), "served.bin")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan daemon.Running, 1)
	done := make(chan error, 1)
	go func() {
		done <- daemon.Serve(ctx, daemon.ServeConfig{
			Listen: "127.0.0.1:0",
			Files:  []string{path},
			K:      128,
			Tick:   500 * time.Microsecond,
			Burst:  4,
			Ready:  func(r daemon.Running) { ready <- r },
		})
	}()
	var r daemon.Running
	select {
	case r = <-ready:
	case err := <-done:
		t.Fatalf("server died: %v", err)
	}

	outPath := filepath.Join(t.TempDir(), "fetched.bin")
	var out bytes.Buffer
	err := run(ctx, []string{
		"-from", string(r.Addr),
		"-id", r.Objects[0].ID.String(),
		"-out", outPath,
		"-bind", "127.0.0.1:0",
		"-timeout", "60s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("fetched file mismatch")
	}
	if !strings.Contains(out.String(), "overhead") {
		t.Fatalf("report missing overhead: %q", out.String())
	}
}
