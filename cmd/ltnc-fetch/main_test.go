package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ltnc/swarm"
)

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, nil, &out); err == nil {
		t.Error("missing required flags accepted")
	}
	err := run(ctx, []string{"-from", "127.0.0.1:1", "-id", "nothex", "-out", "x"}, &out)
	if err == nil {
		t.Error("malformed object id accepted")
	}
	err = run(ctx, []string{"-from", "127.0.0.1:1", "-id", "abcd", "-out", "x"}, &out)
	if err == nil {
		t.Error("short object id accepted")
	}
}

// TestFetchCLI serves an object through the public swarm API and
// retrieves it through the ltnc-fetch CLI entry point, checking the
// written file and the overhead report.
func TestFetchCLI(t *testing.T) {
	content := make([]byte, 64*1024)
	rand.New(rand.NewSource(3)).Read(content)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	server, err := swarm.New(swarm.Config{
		Listen: "127.0.0.1:0",
		Tick:   500 * time.Microsecond,
		Burst:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	id, err := server.Serve(content, 128)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- server.Run(ctx) }()

	outPath := filepath.Join(t.TempDir(), "fetched.bin")
	var out bytes.Buffer
	err = run(ctx, []string{
		"-from", string(server.LocalAddr()),
		"-id", id.String(),
		"-out", outPath,
		"-bind", "127.0.0.1:0",
		"-timeout", "60s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("fetched file mismatch")
	}
	if !strings.Contains(out.String(), "overhead") {
		t.Fatalf("report missing overhead: %q", out.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop on cancel")
	}
}
