// Command ltnc-fetch retrieves one content object from an ltnc-serve
// daemon: it subscribes over UDP, decodes the recoded LT packet stream
// with belief propagation, writes the recovered bytes to disk and reports
// the reception overhead (received packets relative to k, the paper's
// 1 + epsilon).
//
// Usage:
//
//	ltnc-fetch -from host:4980 -id <32-hex-digit object id> -out file
//	ltnc-fetch -bootstrap seed:4980 -id <id> -out file   # discover by gossip
//
// The command is a thin flag-parsing wrapper over the public ltnc/swarm
// API; everything it does is available to library users.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ltnc/swarm"
)

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-fetch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ltnc-fetch", flag.ContinueOnError)
	var (
		from    = fs.String("from", "", "serve daemon address (host:port); optional with -bootstrap")
		boot    = fs.String("bootstrap", "", "comma-separated bootstrap addresses: discover sources through the membership plane")
		idHex   = fs.String("id", "", "object id (32 hex digits, printed by ltnc-serve)")
		output  = fs.String("out", "", "output file (\"-\" for stdout)")
		bind    = fs.String("bind", "0.0.0.0:0", "local UDP address")
		timeout = fs.Duration("timeout", 2*time.Minute, "give up after this long")
		seed    = fs.Int64("seed", 0, "randomness seed (0 = fresh entropy; set for reproducible runs)")
		verbose = fs.Bool("v", false, "log session events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*from == "" && *boot == "") || *idHex == "" || *output == "" {
		return fmt.Errorf("-id, -out and one of -from or -bootstrap are required")
	}
	id, err := swarm.ParseObjectID(*idHex)
	if err != nil {
		return err
	}
	cfg := swarm.Config{Listen: *bind, Seed: *seed}
	for _, b := range splitList(*boot) {
		cfg.Bootstrap = append(cfg.Bootstrap, swarm.Addr(b))
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s, err := swarm.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(runCtx) }()

	fetchCtx, fcancel := context.WithTimeout(ctx, *timeout)
	defer fcancel()
	var srcs []swarm.Addr
	if *from != "" {
		srcs = append(srcs, swarm.Addr(*from))
	}
	content, report, err := s.Fetch(fetchCtx, id, srcs...)
	banned := s.BannedPeers()
	cancel()
	s.Close()
	<-runDone
	if err != nil {
		return err
	}
	if *output == "-" {
		if _, err := out.Write(content); err != nil {
			return err
		}
		// Content owns stdout: the report must not corrupt the stream.
		out = os.Stderr
	} else if err := os.WriteFile(*output, content, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "fetched %d bytes in %v: %d packets for k=%d in %d generations (overhead %.3f), %d aborted on the header\n",
		report.Bytes, report.Elapsed.Round(time.Millisecond),
		report.Stats.Received, report.Stats.K, report.Stats.Generations,
		report.Overhead(), report.Stats.Aborted)
	if report.Stats.HaveManifest {
		fmt.Fprintf(out, "integrity: %d/%d generations verified", report.Stats.GensVerified, report.Stats.Generations)
		if report.Stats.Polluted > 0 {
			fmt.Fprintf(out, ", %d pollution events survived", report.Stats.Polluted)
		}
		if len(banned) > 0 {
			fmt.Fprintf(out, ", banned peers: %v", banned)
		}
		fmt.Fprintln(out)
	}
	return nil
}
