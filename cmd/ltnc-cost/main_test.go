package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllPanels(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ks", "32,64", "-m", "16"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"recode_ctl_LTNC", "decode_data_RLNC"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s", col)
		}
	}
}

func TestRunSinglePanels(t *testing.T) {
	for _, fig := range []string{"8a", "8b", "8c", "8d"} {
		var buf bytes.Buffer
		if err := run([]string{"-fig", fig, "-ks", "32", "-m", "8"}, &buf); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if !strings.Contains(buf.String(), "k\tLTNC\tRLNC") {
			t.Errorf("%s: missing header", fig)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "8z", "-ks", "32"}, &buf); err == nil {
		t.Error("unknown panel accepted")
	}
	if err := run([]string{"-ks", "zz"}, &buf); err == nil {
		t.Error("bad ks accepted")
	}
	if err := run([]string{"-ks", "32", "-m", "0"}, &buf); err == nil {
		t.Error("m=0 accepted")
	}
}
