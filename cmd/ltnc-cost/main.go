// Command ltnc-cost regenerates the computational-cost experiments of
// Figure 8: recoding and decoding costs of LTNC versus RLNC across code
// lengths, split into control-plane (code vectors, Tanner graph, code
// matrix) and data-plane (payload XORs) work.
//
// Units are machine-independent proxies for the paper's CPU cycles:
// 64-bit word operations for control, payload bytes XORed per output byte
// for data. Wall-clock equivalents live in the repository benchmarks
// (go test -bench Fig8 -benchmem).
//
// Usage:
//
//	ltnc-cost [-fig all|8a|8b|8c|8d] [-ks 400,800,1200,1600,2000] [-m 256] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ltnc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-cost:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ltnc-cost", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "panel: all, 8a, 8b, 8c or 8d")
		ksArg = fs.String("ks", "400,800,1200,1600,2000", "code lengths")
		m     = fs.Int("m", 256, "payload size in bytes")
		seed  = fs.Int64("seed", 1, "root seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parts := strings.Split(*ksArg, ",")
	ks := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -ks entry %q: %w", part, err)
		}
		ks = append(ks, v)
	}
	rows, err := experiments.Fig8(ks, *m, *seed)
	if err != nil {
		return err
	}
	switch *fig {
	case "all":
		fmt.Fprintf(out, "# Figure 8 (all panels), m=%d; control in word-ops, data in bytes-XORed/byte\n", *m)
		fmt.Fprintln(out, "k\trecode_ctl_LTNC\trecode_ctl_RLNC\tdecode_ctl_LTNC\tdecode_ctl_RLNC\trecode_data_LTNC\trecode_data_RLNC\tdecode_data_LTNC\tdecode_data_RLNC")
		for _, r := range rows {
			fmt.Fprintf(out, "%d\t%.1f\t%.1f\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				r.K,
				r.LTNCRecodeControl, r.RLNCRecodeControl,
				r.LTNCDecodeControl, r.RLNCDecodeControl,
				r.LTNCRecodeDataPerByte, r.RLNCRecodeDataPerByte,
				r.LTNCDecodeDataPerByte, r.RLNCDecodeDataPerByte)
		}
	case "8a":
		fmt.Fprintln(out, "# Figure 8a: recoding (control), word-ops per recode")
		fmt.Fprintln(out, "k\tLTNC\tRLNC")
		for _, r := range rows {
			fmt.Fprintf(out, "%d\t%.1f\t%.1f\n", r.K, r.LTNCRecodeControl, r.RLNCRecodeControl)
		}
	case "8b":
		fmt.Fprintln(out, "# Figure 8b: decoding (control), total word-ops per content")
		fmt.Fprintln(out, "k\tLTNC\tRLNC")
		for _, r := range rows {
			fmt.Fprintf(out, "%d\t%.0f\t%.0f\n", r.K, r.LTNCDecodeControl, r.RLNCDecodeControl)
		}
	case "8c":
		fmt.Fprintln(out, "# Figure 8c: recoding (data), bytes XORed per recoded byte")
		fmt.Fprintln(out, "k\tLTNC\tRLNC")
		for _, r := range rows {
			fmt.Fprintf(out, "%d\t%.2f\t%.2f\n", r.K, r.LTNCRecodeDataPerByte, r.RLNCRecodeDataPerByte)
		}
	case "8d":
		fmt.Fprintln(out, "# Figure 8d: decoding (data), bytes XORed per decoded byte")
		fmt.Fprintln(out, "k\tLTNC\tRLNC")
		for _, r := range rows {
			fmt.Fprintf(out, "%d\t%.2f\t%.2f\n", r.K, r.LTNCDecodeDataPerByte, r.RLNCDecodeDataPerByte)
		}
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return nil
}
