// Command ltnc-sim regenerates the dissemination experiments of the
// paper's evaluation (Figure 7) as tab-separated series, and runs named
// virtual-time swarm scenarios (ltnc/simlab) as JSON reports.
//
// Usage:
//
//	ltnc-sim -fig 7a [-n 1000] [-k 2048] [-runs 25] [-seed 1] [-agg 0.01]
//	ltnc-sim -fig 7b [-ks 512,1024,2048,4096] ...
//	ltnc-sim -fig 7c [-ks 512,1024,2048,4096] ...
//	ltnc-sim -fig headline [-n 1000] [-k 2048] [-m 256] ...
//	ltnc-sim -scenario churn50 [-seed 1]
//	ltnc-sim -list
//
// Paper scale (N=1000, k up to 4096, 25 runs) takes a while; the defaults
// are a laptop-scale variant with the same shapes. A -scenario run spins
// up the real session stack on the deterministic virtual-time fabric —
// 50-node churn swarms, multihop partitions, asymmetric uplinks — and
// prints the invariant-checked report as JSON; virtual minutes cost wall
// seconds. EXPERIMENTS.md records both the command lines used and the
// measured values.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"ltnc/internal/experiments"
	"ltnc/internal/sim"
	"ltnc/simlab"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ltnc-sim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "", "run this named virtual-time swarm scenario and print a JSON report (see -list)")
		list     = fs.Bool("list", false, "list the named scenarios and exit")

		fig   = fs.String("fig", "7a", "experiment: 7a, 7b, 7c or headline")
		n     = fs.Int("n", 200, "number of nodes (paper: 1000)")
		k     = fs.Int("k", 512, "code length for 7a/headline (paper: 2048)")
		ksArg = fs.String("ks", "256,512,1024,2048", "code lengths for 7b/7c")
		runs  = fs.Int("runs", 3, "Monte-Carlo runs (paper: 25)")
		seed  = fs.Int64("seed", 1, "root seed")
		agg   = fs.Float64("agg", 0.01, "LTNC aggressiveness")
		m     = fs.Int("m", 256, "payload size for the cost pass of headline")
		every = fs.Int("every", 0, "curve sampling stride for 7a (0 = auto)")
		fanIn = fs.Int("fanin", 1, "inbound transfers a node serves per period (-1 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return listScenarios(out)
	}
	if *scenario != "" {
		return runScenario(out, *scenario, *seed)
	}
	p := experiments.Fig7Params{
		N: *n, K: *k, Runs: *runs, Seed: *seed, Aggressiveness: *agg, FanIn: *fanIn,
	}
	switch *fig {
	case "7a":
		return fig7a(out, p, *every)
	case "7b":
		ks, err := parseKs(*ksArg)
		if err != nil {
			return err
		}
		return fig7b(out, ks, p)
	case "7c":
		ks, err := parseKs(*ksArg)
		if err != nil {
			return err
		}
		return fig7c(out, ks, p)
	case "headline":
		return headline(out, p, *m)
	case "ablation":
		return ablation(out, p)
	default:
		return fmt.Errorf("unknown -fig %q (want 7a, 7b, 7c, headline or ablation)", *fig)
	}
}

// listScenarios prints the catalog, one scenario per line: name, resolved
// population (sources/relays/caches/polluters/fetchers and object count),
// how many bootstrap nodes seed the membership plane (0 = static wiring)
// and what the scenario exercises.
func listScenarios(out io.Writer) error {
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tNODES\tBOOT\tOBJECTS\tDESCRIPTION")
	for _, info := range simlab.Catalog() {
		var pop []string
		if info.Sources > 0 {
			pop = append(pop, fmt.Sprintf("%ds", info.Sources))
		}
		if info.Relays > 0 {
			pop = append(pop, fmt.Sprintf("%dr", info.Relays))
		}
		if info.Caches > 0 {
			pop = append(pop, fmt.Sprintf("%dc", info.Caches))
		}
		if info.Polluters > 0 {
			pop = append(pop, fmt.Sprintf("%dp", info.Polluters))
		}
		if info.Fetchers > 0 {
			pop = append(pop, fmt.Sprintf("%df", info.Fetchers))
		}
		boot := "-"
		if info.Bootstrap > 0 {
			boot = strconv.Itoa(info.Bootstrap)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\n", info.Name, strings.Join(pop, "+"), boot, info.Objects, info.Desc)
	}
	return tw.Flush()
}

// runScenario executes one named simlab scenario and prints the full
// report as indented JSON. Invariant violations make the command fail so
// a scripted run (CI, cron) notices; the report still prints for
// diagnosis, and the seed in it replays the run exactly.
func runScenario(out io.Writer, name string, seed int64) error {
	sc, err := simlab.Named(name, seed)
	if err != nil {
		return err
	}
	rep, err := sc.Run(context.Background())
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Ok() {
		return fmt.Errorf("scenario %s (seed %d): %d violations, %d fetches failed",
			name, rep.Seed, len(rep.Violations), rep.FetchesFailed)
	}
	return nil
}

func ablation(out io.Writer, p experiments.Fig7Params) error {
	rows, err := experiments.Ablations(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Ablations at N=%d k=%d runs=%d (DESIGN.md §6)\n", p.N, p.K, p.Runs)
	fmt.Fprintln(out, "variant\tavg_completion\toverhead_pct\tpayloads\taborted")
	for _, r := range rows {
		fmt.Fprintf(out, "%s\t%.1f\t%.2f\t%d\t%d\n",
			r.Name, r.AvgCompletion, r.OverheadPct, r.Payloads, r.Aborted)
	}
	return nil
}

func parseKs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ks := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -ks entry %q: %w", part, err)
		}
		ks = append(ks, v)
	}
	return ks, nil
}

func fig7a(out io.Writer, p experiments.Fig7Params, every int) error {
	curves, err := experiments.Fig7a(p)
	if err != nil {
		return err
	}
	maxLen := 0
	for _, c := range curves {
		maxLen = max(maxLen, len(c))
	}
	if every <= 0 {
		every = max(1, maxLen/200)
	}
	fmt.Fprintf(out, "# Figure 7a: convergence, N=%d k=%d runs=%d\n", p.N, p.K, p.Runs)
	fmt.Fprintln(out, "round\tWC\tLTNC\tRLNC")
	at := func(c []float64, i int) float64 {
		if i < len(c) {
			return c[i]
		}
		return 1
	}
	for i := 0; i < maxLen; i += every {
		fmt.Fprintf(out, "%d\t%.4f\t%.4f\t%.4f\n",
			i+1, at(curves[sim.WC], i), at(curves[sim.LTNC], i), at(curves[sim.RLNC], i))
	}
	return nil
}

func fig7b(out io.Writer, ks []int, p experiments.Fig7Params) error {
	rows, err := experiments.Fig7b(ks, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Figure 7b: average time to complete (gossip periods), N=%d runs=%d\n", p.N, p.Runs)
	fmt.Fprintln(out, "k\tWC\tLTNC\tRLNC")
	for _, r := range rows {
		fmt.Fprintf(out, "%d\t%.1f\t%.1f\t%.1f\n", r.K, r.WC, r.LTNC, r.RLNC)
	}
	return nil
}

func fig7c(out io.Writer, ks []int, p experiments.Fig7Params) error {
	rows, err := experiments.Fig7c(ks, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Figure 7c: LTNC communication overhead, N=%d runs=%d\n", p.N, p.Runs)
	fmt.Fprintln(out, "k\toverhead_pct")
	for _, r := range rows {
		fmt.Fprintf(out, "%d\t%.2f\n", r.K, r.OverheadPct)
	}
	return nil
}

func headline(out io.Writer, p experiments.Fig7Params, m int) error {
	res, err := experiments.Headline(p, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Headline trade-off at N=%d k=%d (paper at k=2048: +20%% msgs, +~30%% time, -99%% decode)\n", res.N, res.K)
	fmt.Fprintf(out, "ltnc_overhead_pct\t%.2f\n", res.LTNCOverheadPct)
	fmt.Fprintf(out, "convergence_ratio_ltnc_over_rlnc\t%.3f\n", res.ConvergenceRatio)
	fmt.Fprintf(out, "decode_control_ratio_ltnc_over_rlnc\t%.5f\n", res.DecodeControlRatio)
	fmt.Fprintf(out, "decode_reduction_pct\t%.2f\n", res.DecodeReductionPct)
	fmt.Fprintf(out, "decode_data_bytes_per_byte_ltnc\t%.2f\n", res.DecodeDataLTNCPerByte)
	fmt.Fprintf(out, "decode_data_bytes_per_byte_rlnc\t%.2f\n", res.DecodeDataRLNCPerByte)
	return nil
}
