package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseKs(t *testing.T) {
	ks, err := parseKs("256, 512,1024")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 3 || ks[0] != 256 || ks[1] != 512 || ks[2] != 1024 {
		t.Errorf("parseKs = %v", ks)
	}
	if _, err := parseKs("12,abc"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestRunFig7aTiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "7a", "-n", "8", "-k", "24", "-runs", "1", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "round\tWC\tLTNC\tRLNC") {
		t.Errorf("missing series header in %q", out[:min(120, len(out))])
	}
}

func TestRunFig7bTiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "7b", "-n", "8", "-ks", "16,24", "-runs", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k\tWC\tLTNC\tRLNC") {
		t.Error("missing table header")
	}
}

func TestRunFig7cTiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "7c", "-n", "8", "-ks", "24", "-runs", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "overhead_pct") {
		t.Error("missing overhead column")
	}
}

func TestRunHeadlineTiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "headline", "-n", "8", "-k", "32", "-runs", "1", "-m", "16"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "decode_reduction_pct") {
		t.Error("missing headline metric")
	}
}

func TestRunAblationTiny(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "ablation", "-n", "8", "-k", "24", "-runs", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ltnc/baseline") {
		t.Error("missing baseline row")
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "churn50") || !strings.Contains(buf.String(), "partition3hop") {
		t.Errorf("catalog listing incomplete: %q", buf.String())
	}
	// The listing carries the resolved populations and descriptions, not
	// just names: edge-cache resolves to 1 source + 3 caches + 8 fetchers.
	if !strings.Contains(buf.String(), "1s+3c+8f") || !strings.Contains(buf.String(), "flash crowd") {
		t.Errorf("catalog listing lacks populations/descriptions: %q", buf.String())
	}
}

func TestRunScenarioSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "smoke", "-seed", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"scenario": "smoke"`, `"seed": 5`, `"fetches_completed": 2`, `"timeline_hash"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON report missing %s", want)
		}
	}
}

func TestRunScenarioUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "no-such"}, &buf); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunUnknownFig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "9z"}, &buf); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "7b", "-ks", "x"}, &buf); err == nil {
		t.Error("bad ks accepted")
	}
}
