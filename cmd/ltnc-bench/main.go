// ltnc-bench runs the decode-throughput harness (internal/experiments)
// and writes BENCH_decode.json: MB/s decoded and allocations per packet
// for the scalar packet-at-a-time hot path versus the batched,
// arena-backed decode engine, on the 1 MiB / 64-object workload. CI runs
// it on every push and archives the JSON so the throughput trajectory is
// tracked across PRs.
//
// With -offload it instead sweeps the edge-cache tier: origin DATA
// frames versus cache byte budget on the virtual-time flash-crowd
// scenario, written to OFFLOAD_cache.json (also archived by CI). See
// EXPERIMENTS.md for the recorded curve.
//
// With -adapt it instead sweeps the adaptive-loop overhead-vs-loss
// grid: total DATA frames for the static, systematic-only and fully
// adaptive sender on an identical single-path swarm at each link loss
// rate, written to ADAPT_curve.json (also archived by CI). See
// EXPERIMENTS.md for the recorded grid.
//
// With -transport it additionally runs the loopback UDP transport
// benchmark — the per-frame syscall path versus the batched
// sendmmsg/GSO + recvmmsg/GRO fast path — and records end-to-end MB/s,
// syscalls/packet and allocs/packet under the "transport" key of the
// output JSON.
//
// The -ref-* flags attach a fixed reference measurement of the hot path
// before the batched engine existed (same workload, machine-specific);
// see EXPERIMENTS.md for provenance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ltnc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-bench:", err)
		os.Exit(1)
	}
}

// parseGenSweep parses the -generations comma list; empty disables the
// sweep.
func parseGenSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		g, err := strconv.Atoi(part)
		if err != nil || g < 1 {
			return nil, fmt.Errorf("bad generation count %q", part)
		}
		out = append(out, g)
	}
	return out, nil
}

// runOffload sweeps the origin-offload-vs-budget curve and prints it as
// a table: what serving the flash crowd costs the origin at each cache
// budget.
func runOffload(out *os.File, budgetsArg, outPath string, seed int64) error {
	var budgets []int64
	for _, part := range strings.Split(budgetsArg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b, err := strconv.ParseInt(part, 10, 64)
		if err != nil || b <= 0 {
			return fmt.Errorf("bad -offload budget %q", part)
		}
		budgets = append(budgets, b)
	}
	rep, err := experiments.RunOffloadCurve(experiments.OffloadParams{
		Budgets: budgets,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "edge-cache offload: %d fetchers, %d B object, k=%d, G=%d, seed %d\n",
		rep.Fetchers, rep.Size, rep.K, rep.Generations, rep.Seed)
	fmt.Fprintln(out, "budget_bytes\torigin_data_frames\toffload\tcache_rows\tmean_overhead")
	for _, pt := range rep.Points {
		fmt.Fprintf(out, "%d\t%d\t%.3f\t%d\t%.2f\n",
			pt.Budget, pt.OriginDataFrames, pt.Offload, pt.CacheRows, pt.MeanOverhead)
	}
	if outPath != "" {
		if err := rep.WriteJSON(outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	return nil
}

// runAdapt sweeps the overhead-vs-loss grid and prints it as a table:
// what each adaptive control tier saves (or costs) against the static
// sender at each loss rate.
func runAdapt(out *os.File, lossesArg, outPath string, seed int64) error {
	var losses []float64
	for _, part := range strings.Split(lossesArg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		l, err := strconv.ParseFloat(part, 64)
		if err != nil || l < 0 || l >= 1 {
			return fmt.Errorf("bad -adapt-losses rate %q", part)
		}
		losses = append(losses, l)
	}
	rep, err := experiments.RunAdaptCurve(experiments.AdaptParams{
		Losses: losses,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "adaptive-loop sweep: %d fetchers, %d B object, k=%d, seed %d\n",
		rep.Fetchers, rep.Size, rep.K, rep.Seed)
	fmt.Fprintln(out, "loss\tmode\tdata_frames\tcut_vs_static\tmean_overhead")
	for _, pt := range rep.Points {
		fmt.Fprintf(out, "%.2f\t%s\t%d\t%+.3f\t%.2f\n",
			pt.Loss, pt.Mode, pt.DataFrames, pt.CutVsStatic, pt.MeanOverhead)
	}
	if outPath != "" {
		if err := rep.WriteJSON(outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	return nil
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("ltnc-bench", flag.ContinueOnError)
	var (
		objects    = fs.Int("objects", 0, "number of concurrent objects (default 64)")
		objectSize = fs.Int("size", 0, "per-object content bytes (default 16384)")
		k          = fs.Int("k", 0, "code length per object (default 64)")
		batch      = fs.Int("batch", 0, "engine ingest batch size (default 32)")
		rounds     = fs.Int("rounds", 0, "measurement rounds, fastest kept (default 3)")
		seed       = fs.Int64("seed", 0, "workload seed (default 1)")
		gens       = fs.String("generations", "1,4,16", "generation sweep counts over the 1 MiB object (comma list; empty disables)")
		genSize    = fs.Int("gen-size", 0, "generation sweep object bytes (default 1 MiB)")
		genK       = fs.Int("gen-k", 0, "generation sweep total code length (default 1024)")
		outPath    = fs.String("out", "BENCH_decode.json", "output JSON path (empty: stdout only)")
		refMBps    = fs.Float64("ref-mbps", 0, "pre-PR reference throughput in MB/s (0: omit)")
		refAllocs  = fs.Float64("ref-allocs", 0, "pre-PR reference allocs/packet")
		refNote    = fs.String("ref-note", "", "provenance note for the pre-PR reference")
		refKeep    = fs.Bool("ref-keep", true, "carry the pre_pr reference over from an existing -out file when no -ref-* flags are given")

		offload    = fs.String("offload", "", "sweep the edge-cache offload curve over these cache budgets in bytes (comma list) instead of the decode bench")
		offloadOut = fs.String("offload-out", "OFFLOAD_cache.json", "offload curve output JSON path (empty: stdout only)")

		adapt       = fs.Bool("adapt", false, "sweep the adaptive-loop overhead-vs-loss grid (static vs systematic vs adaptive) instead of the decode bench")
		adaptLosses = fs.String("adapt-losses", "0,0.05,0.20,0.40", "loss rates for the -adapt sweep (comma list)")
		adaptOut    = fs.String("adapt-out", "ADAPT_curve.json", "adaptive sweep output JSON path (empty: stdout only)")

		tbench     = fs.Bool("transport", false, "also run the loopback UDP transport benchmark (per-frame vs batched syscall path) and record it in the output JSON")
		tFrames    = fs.Int("transport-frames", 0, "transport bench datagrams per leg (default 20000)")
		tFrameSize = fs.Int("transport-frame-size", 0, "transport bench payload bytes (default 1200)")
		tReaders   = fs.Int("transport-readers", 0, "transport bench receive shards for the batched leg (default 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *offload != "" {
		return runOffload(out, *offload, *offloadOut, *seed)
	}
	if *adapt {
		return runAdapt(out, *adaptLosses, *adaptOut, *seed)
	}
	// The pre-PR reference is a fixed external measurement (see
	// tools/prebench); rewriting the JSON must not silently drop it. The
	// transport section is likewise carried over when this run does not
	// remeasure it.
	var keepRef *experiments.DecodePathResult
	var keepNote string
	var keepTransport *experiments.TransportBenchReport
	if *outPath != "" {
		if data, err := os.ReadFile(*outPath); err == nil {
			var prev experiments.DecodeBenchReport
			if json.Unmarshal(data, &prev) == nil {
				if *refKeep && *refMBps == 0 && prev.PrePR != nil {
					keepRef, keepNote = prev.PrePR, prev.PrePRNote
				}
				if !*tbench {
					keepTransport = prev.Transport
				}
			}
		}
	}
	sweep, err := parseGenSweep(*gens)
	if err != nil {
		return err
	}
	rep, err := experiments.RunDecodeBench(experiments.DecodeBenchParams{
		Objects:       *objects,
		ObjectSize:    *objectSize,
		K:             *k,
		Batch:         *batch,
		Rounds:        *rounds,
		Seed:          *seed,
		GenSweep:      sweep,
		GenObjectSize: *genSize,
		GenK:          *genK,
	})
	if err != nil {
		return err
	}
	switch {
	case *refMBps > 0:
		rep.SetPrePRReference(experiments.DecodePathResult{
			Path:            "pre-pr-scalar",
			MBps:            *refMBps,
			AllocsPerPacket: *refAllocs,
		}, *refNote)
	case keepRef != nil:
		rep.SetPrePRReference(*keepRef, keepNote)
	}
	if *tbench {
		trep, err := experiments.RunTransportBench(experiments.TransportBenchParams{
			Frames:    *tFrames,
			FrameSize: *tFrameSize,
			Readers:   *tReaders,
			Rounds:    *rounds,
			Seed:      *seed,
		})
		if err != nil {
			return err
		}
		rep.Transport = &trep
	} else if keepTransport != nil {
		rep.Transport = keepTransport
	}
	fmt.Fprintf(out, "workload: %d objects x %d B, k=%d, batch=%d\n",
		rep.Objects, rep.ObjectSize, rep.K, rep.Batch)
	fmt.Fprintf(out, "scalar:  %8.1f MB/s  %6.2f allocs/pkt  (%d packets)\n",
		rep.Baseline.MBps, rep.Baseline.AllocsPerPacket, rep.Baseline.Packets)
	fmt.Fprintf(out, "engine:  %8.1f MB/s  %6.2f allocs/pkt  (%d packets)\n",
		rep.Engine.MBps, rep.Engine.AllocsPerPacket, rep.Engine.Packets)
	fmt.Fprintf(out, "engine vs scalar: %.2fx throughput, %.2fx fewer allocs\n",
		rep.SpeedupX, rep.AllocReductionX)
	if rep.PrePR != nil {
		fmt.Fprintf(out, "engine vs pre-PR: %.2fx throughput, %.2fx fewer allocs (%s)\n",
			rep.SpeedupVsPrePRX, rep.AllocReductionVsPrePRX, rep.PrePRNote)
	}
	if tr := rep.Transport; tr != nil {
		fmt.Fprintf(out, "transport: %d frames x %d B over loopback UDP, batch=%d\n",
			tr.Frames, tr.FrameSize, tr.Batch)
		for _, leg := range []experiments.TransportPathResult{tr.Baseline, tr.Batched} {
			fmt.Fprintf(out, "  %-10s %8.1f MB/s  %5.3f syscalls/pkt (send %5.3f, recv %5.3f)  %5.2f allocs/pkt  gso=%v gro=%v readers=%d\n",
				leg.Path, leg.MBps, leg.SyscallsPerPacket, leg.SendSyscallsPerPacket,
				leg.RecvSyscallsPerPacket, leg.AllocsPerPacket, leg.GSO, leg.GRO, leg.Readers)
		}
		fmt.Fprintf(out, "  batched vs per-frame: %.1fx fewer syscalls/pkt, %.2fx throughput\n",
			tr.SyscallReductionX, tr.SpeedupX)
	}
	if len(rep.GenSweep) > 0 {
		fmt.Fprintf(out, "generation sweep: %d B object, k=%d\n", rep.GenObjectSize, rep.GenK)
		for _, e := range rep.GenSweep {
			fmt.Fprintf(out, "  G=%-3d k/G=%-5d %8.1f MB/s  %6.2f allocs/pkt  %4d header B/pkt  overhead %.3f\n",
				e.Generations, e.KPer, e.MBps, e.AllocsPerPacket, e.HeaderBytesPerPacket, e.Overhead)
		}
	}
	if *outPath != "" {
		if err := rep.WriteJSON(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
