package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ltnc/internal/experiments"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-objects", "2", "-size", "2048", "-k", "16", "-rounds", "1",
		"-out", out,
		"-ref-mbps", "10", "-ref-allocs", "20", "-ref-note", "test ref",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.DecodeBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Engine.Packets == 0 {
		t.Fatalf("empty engine result: %+v", rep)
	}
	if rep.PrePR == nil || rep.PrePR.MBps != 10 {
		t.Fatalf("pre-PR reference missing: %+v", rep)
	}
}

// TestRunOffloadMode: -offload swaps the decode bench for the edge-cache
// budget sweep and writes the curve artifact.
func TestRunOffloadMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "offload.json")
	err := run([]string{
		"-offload", "65536,98304", "-offload-out", out, "-seed", "1",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.OffloadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 || rep.Points[1].Offload <= 0 {
		t.Fatalf("offload curve missing or flat: %+v", rep.Points)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-offload", "4096,nope"}, os.Stdout); err == nil {
		t.Error("malformed offload budget accepted")
	}
	if err := run([]string{"-objects", "-3", "-out", ""}, os.Stdout); err == nil {
		t.Error("negative objects accepted")
	}
	if err := run([]string{"-generations", "1,x", "-out", ""}, os.Stdout); err == nil {
		t.Error("malformed generation sweep accepted")
	}
	if err := run([]string{"-generations", "3", "-gen-k", "64", "-out", ""}, os.Stdout); err == nil {
		t.Error("non-dividing generation count accepted")
	}
}

// TestRunGenerationSweepInReport: the default sweep lands in the JSON.
func TestRunGenerationSweepInReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-objects", "2", "-size", "2048", "-k", "16", "-rounds", "1",
		"-generations", "1,4", "-gen-size", "32768", "-gen-k", "64",
		"-out", out,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.DecodeBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.GenSweep) != 2 || rep.GenSweep[1].Generations != 4 {
		t.Fatalf("generation sweep missing from report: %+v", rep.GenSweep)
	}
}

// TestRunKeepsReference: rewriting an existing report without -ref-*
// flags must carry the pre_pr block forward, not drop it (CI regenerates
// the JSON on every push).
func TestRunKeepsReference(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	base := []string{"-objects", "2", "-size", "2048", "-k", "16", "-rounds", "1", "-out", out}
	if err := run(append(base, "-ref-mbps", "33", "-ref-allocs", "11", "-ref-note", "anchor"), os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run(base, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.DecodeBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.PrePR == nil || rep.PrePR.MBps != 33 || rep.PrePRNote != "anchor" {
		t.Fatalf("pre_pr reference dropped on rewrite: %+v", rep.PrePR)
	}
}
