package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "64"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "degree\tpmf") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "k=64") {
		t.Error("missing parameter echo")
	}
	lines := strings.Count(out, "\n")
	if lines < 10 {
		t.Errorf("only %d lines of output", lines)
	}
}

func TestRunAllFlag(t *testing.T) {
	var terse, full bytes.Buffer
	if err := run([]string{"-k", "2048"}, &terse); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-k", "2048", "-all"}, &full); err != nil {
		t.Fatal(err)
	}
	if full.Len() <= terse.Len() {
		t.Error("-all did not print more degrees")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "0"}, &buf); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run([]string{"-c", "-1"}, &buf); err == nil {
		t.Error("c<0 accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
