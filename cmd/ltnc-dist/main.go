// Command ltnc-dist prints the Robust Soliton degree distribution series
// of Figure 2 as tab-separated values (degree, pmf), ready for log-log
// plotting.
//
// Usage:
//
//	ltnc-dist [-k 2048] [-c 0.03] [-delta 0.5] [-all]
//
// By default only degrees with non-negligible mass are printed; -all
// prints the full support.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ltnc/internal/experiments"
	"ltnc/internal/soliton"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-dist:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ltnc-dist", flag.ContinueOnError)
	var (
		k     = fs.Int("k", 2048, "code length")
		c     = fs.Float64("c", soliton.DefaultC, "Robust Soliton c parameter")
		delta = fs.Float64("delta", soliton.DefaultDelta, "Robust Soliton delta parameter")
		all   = fs.Bool("all", false, "print all degrees, including negligible mass")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pts, err := experiments.Fig2(*k, *c, *delta)
	if err != nil {
		return err
	}
	dist, err := soliton.NewRobust(*k, *c, *delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Figure 2: Robust Soliton distribution, k=%d c=%g delta=%g\n", *k, *c, *delta)
	fmt.Fprintf(out, "# mean degree %.3f, spike at %d, mass on degrees 1-2: %.3f\n",
		dist.Mean(), dist.Spike(), dist.CDF(2))
	fmt.Fprintln(out, "degree\tpmf")
	for _, p := range pts {
		// The deep Ideal-Soliton tail (PMF < 1e-6) adds hundreds of
		// near-zero rows at large k; skip it unless -all is given.
		if !*all && p.PMF < 1e-6 {
			continue
		}
		fmt.Fprintf(out, "%d\t%.9g\n", p.Degree, p.PMF)
	}
	return nil
}
