// Command ltnc-file encodes a file into a stream of LT packets and
// decodes such a stream back — a minimal end-to-end demonstration of the
// library and its wire format.
//
// Usage:
//
//	ltnc-file encode -in FILE -out PACKETS [-k 256] [-rate 1.4] [-seed 1]
//	ltnc-file decode -in PACKETS -out FILE -size BYTES [-k 256]
//
// encode writes ceil(rate·k) packets in the wire format; decode replays
// them through a belief-propagation node and writes the recovered bytes.
// A rate around 1.3–1.5 gives comfortable decoding margin (LT codes need
// (1+ε)·k packets).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ltnc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-file:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: ltnc-file encode|decode [flags]")
	}
	switch args[0] {
	case "encode":
		return encode(args[1:])
	case "decode":
		return decode(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want encode or decode)", args[0])
	}
}

func encode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "input file")
		out  = fs.String("out", "", "output packet stream")
		k    = fs.Int("k", 256, "code length")
		rate = fs.Float64("rate", 1.4, "packets emitted as a multiple of k")
		seed = fs.Int64("seed", 1, "encoder seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return errors.New("encode: -in and -out are required")
	}
	if *rate <= 0 {
		return errors.New("encode: -rate must be positive")
	}
	content, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	src, err := ltnc.NewSource(content, *k, ltnc.WithSeed(*seed))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	count := int(*rate * float64(*k))
	for i := 0; i < count; i++ {
		if err := ltnc.WritePacket(w, src.Packet()); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("encoded %d bytes into %d packets (k=%d, m=%d) -> %s\n",
		len(content), count, src.K(), src.M(), *out)
	return nil
}

func decode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "input packet stream")
		out  = fs.String("out", "", "output file")
		k    = fs.Int("k", 256, "code length used at encode time")
		size = fs.Int("size", 0, "original content size in bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *size <= 0 {
		return errors.New("decode: -in, -out and -size are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	var node *ltnc.Node
	used := 0
	for {
		p, err := ltnc.ReadPacket(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("reading packet %d: %w", used, err)
		}
		if node == nil {
			if p.K() != *k {
				return fmt.Errorf("stream is for k=%d, got -k %d", p.K(), *k)
			}
			if node, err = ltnc.NewNode(p.K(), len(p.Payload)); err != nil {
				return err
			}
		}
		node.Receive(p)
		used++
		if node.Complete() {
			break
		}
	}
	if node == nil || !node.Complete() {
		decoded := 0
		if node != nil {
			decoded, _ = node.Progress()
		}
		return fmt.Errorf("stream exhausted after %d packets with %d/%d natives decoded",
			used, decoded, *k)
	}
	content, err := node.Bytes(*size)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, content, 0o644); err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes from %d packets -> %s\n", len(content), used, *out)
	return nil
}
