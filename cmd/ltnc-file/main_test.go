package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	packets := filepath.Join(dir, "packets.ltnc")
	out := filepath.Join(dir, "out.bin")

	content := bytes.Repeat([]byte("the quick brown fox "), 500)
	if err := os.WriteFile(in, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"encode", "-in", in, "-out", packets, "-k", "64", "-rate", "1.6"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"decode", "-in", packets, "-out", out,
		"-k", "64", "-size", strconv.Itoa(len(content)),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestDecodeInsufficientPackets(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	packets := filepath.Join(dir, "packets.ltnc")
	if err := os.WriteFile(in, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	// rate 0.5 cannot decode.
	if err := run([]string{"encode", "-in", in, "-out", packets, "-k", "64", "-rate", "0.5"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"decode", "-in", packets, "-out", filepath.Join(dir, "out.bin"),
		"-k", "64", "-size", "4096",
	})
	if err == nil {
		t.Error("under-provisioned stream decoded")
	}
}

func TestUsageErrors(t *testing.T) {
	tests := [][]string{
		nil,
		{"transcode"},
		{"encode"},
		{"encode", "-in", "x"},
		{"encode", "-in", "/nonexistent", "-out", "/tmp/x"},
		{"decode"},
		{"decode", "-in", "x", "-out", "y"},
		{"encode", "-in", "x", "-out", "y", "-rate", "-1"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDecodeWrongK(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	packets := filepath.Join(dir, "packets.ltnc")
	if err := os.WriteFile(in, make([]byte, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"encode", "-in", in, "-out", packets, "-k", "32"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"decode", "-in", packets, "-out", filepath.Join(dir, "out.bin"),
		"-k", "64", "-size", "1024",
	})
	if err == nil {
		t.Error("mismatched k accepted")
	}
}
