package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ltnc/swarm"
)

type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-relay=false"}, &out); err == nil {
		t.Error("source with nothing to serve or push accepted")
	}
	if err := run(ctx, []string{"-listen", "127.0.0.1:0", "-file", "/does/not/exist"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(ctx, []string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(ctx, []string{"-listen", "127.0.0.1:0", "-k", "-1"}, &out); err == nil {
		t.Error("negative k accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a:1, ,b:2,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("splitList = %q", got)
	}
	if splitList("") != nil {
		t.Fatal("splitList of empty string not nil")
	}
}

// TestServeCLIThenFetch starts the daemon through its CLI entry point,
// scrapes the announced address and object id off stdout (as an operator
// would) and fetches the object back through the public swarm API.
func TestServeCLIThenFetch(t *testing.T) {
	content := make([]byte, 96*1024)
	rand.New(rand.NewSource(8)).Read(content)
	path := filepath.Join(t.TempDir(), "cli.bin")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &lockedBuf{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0",
			"-file", path,
			"-k", "128",
			"-tick", "500us",
			"-burst", "4",
		}, out)
	}()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	idRe := regexp.MustCompile(`serving ([0-9a-f]{32}) `)
	var addr, idHex string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" || idHex == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced itself; output:\n%s", out.String())
		}
		s := out.String()
		if m := addrRe.FindStringSubmatch(s); m != nil {
			addr = m[1]
		}
		if m := idRe.FindStringSubmatch(s); m != nil {
			idHex = m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	id, err := swarm.ParseObjectID(idHex)
	if err != nil {
		t.Fatal(err)
	}

	client, err := swarm.New(swarm.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	go client.Run(ctx)
	fetchCtx, fcancel := context.WithTimeout(ctx, 60*time.Second)
	defer fcancel()
	got, _, err := client.Fetch(fetchCtx, id, swarm.Addr(addr))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("CLI-served content mismatch")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop on cancel")
	}
}
