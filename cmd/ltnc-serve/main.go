// Command ltnc-serve runs an LTNC dissemination daemon over UDP: it
// serves content objects it was given, and — the paper's contribution —
// recodes and re-pushes objects it receives from other daemons, acting as
// an intermediary that generates fresh LT-shaped packets from a partial,
// encoded view.
//
// Usage:
//
//	ltnc-serve -listen :4980 -file big.iso [-k 1024] [-peer host:4980,...]
//	ltnc-serve -listen :4981 -peer next-hop:4980        # pure relay
//	ltnc-serve -listen :4982 -bootstrap seed:4980       # join by gossip
//
// Each served file is announced on stdout as "serving <id> <path>"; pass
// the id to ltnc-fetch. The daemon runs until SIGINT/SIGTERM.
//
// The command is a thin flag-parsing wrapper over the public ltnc/swarm
// API; everything it does is available to library users.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ltnc/swarm"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-serve:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ltnc-serve", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:4980", "UDP listen address")
		files   = fs.String("file", "", "comma-separated files to serve")
		peers   = fs.String("peer", "", "comma-separated push targets (host:port)")
		boot    = fs.String("bootstrap", "", "comma-separated bootstrap addresses: join the swarm's membership plane and discover peers by gossip")
		k       = fs.Int("k", 256, "code length for served files")
		gens    = fs.Int("generations", 0, "coding generations per served file (0 = auto from k; headers and decode state are O(k/G))")
		relay   = fs.Bool("relay", true, "recode and re-push objects learned from peers")
		tick    = fs.Duration("tick", 2*time.Millisecond, "push period")
		burst   = fs.Int("burst", 1, "packets per object, target and tick")
		idle    = fs.Duration("idle-timeout", time.Minute, "evict object state idle this long")
		seed    = fs.Int64("seed", 0, "randomness seed (0 = fresh entropy; set for reproducible runs)")
		readers = fs.Int("udp-readers", 0, "receive shards on the Linux batched UDP path (SO_REUSEPORT sockets, one core each; 0 = single shard)")
		verbose = fs.Bool("v", false, "log session events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *files == "" && *peers == "" && *boot == "" && !*relay {
		return fmt.Errorf("nothing to do: need -file to serve, -peer to push toward, -bootstrap to join through, or -relay")
	}
	if *k < 1 {
		return fmt.Errorf("k = %d < 1", *k)
	}
	if *gens < 0 {
		return fmt.Errorf("generations = %d < 0", *gens)
	}
	cfg := swarm.Config{
		Listen:      *listen,
		UDPReaders:  *readers,
		Relay:       *relay,
		Tick:        *tick,
		Burst:       *burst,
		IdleTimeout: *idle,
		Seed:        *seed,
		Generations: *gens,
	}
	for _, p := range splitList(*peers) {
		cfg.Peers = append(cfg.Peers, swarm.Addr(p))
	}
	for _, b := range splitList(*boot) {
		cfg.Bootstrap = append(cfg.Bootstrap, swarm.Addr(b))
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s, err := swarm.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Fprintf(out, "listening on %s\n", s.LocalAddr())
	for _, path := range splitList(*files) {
		id, err := s.ServeFile(path, *k)
		if err != nil {
			return fmt.Errorf("serve %s: %w", path, err)
		}
		stats, _ := s.Object(id)
		fmt.Fprintf(out, "serving %s %s (%d bytes, k=%d, G=%d)\n", id, path, stats.Size, stats.K, stats.Generations)
	}
	return s.Run(ctx)
}
