// Command ltnc-stats regenerates the recoder micro-statistics the paper
// reports inline in Sections III-B and III-C: pick-degree acceptance,
// build accuracy, refinement spread and redundancy-detector effectiveness
// (ground-truthed against an exact GF(2) rank oracle).
//
// Usage:
//
//	ltnc-stats [-k 512] [-nodes 24] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ltnc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ltnc-stats:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ltnc-stats", flag.ContinueOnError)
	var (
		k     = fs.Int("k", 512, "code length (paper: 2048)")
		nodes = fs.Int("nodes", 24, "mesh size")
		seed  = fs.Int64("seed", 1, "root seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := experiments.Inline(*k, *nodes, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# Inline statistics at k=%d, %d nodes (paper values at k=2048 in parentheses)\n", st.K, st.Nodes)
	fmt.Fprintf(out, "pick_first_accept_rate\t%.4f\t(0.999)\n", st.PickFirstAcceptRate)
	fmt.Fprintf(out, "avg_pick_retries\t%.3f\t(1.02)\n", st.AvgPickRetries)
	fmt.Fprintf(out, "build_target_rate\t%.4f\t(0.95)\n", st.BuildTargetRate)
	fmt.Fprintf(out, "avg_build_rel_deviation\t%.5f\t(0.002)\n", st.AvgBuildDeviation)
	fmt.Fprintf(out, "occurrence_rel_stddev_mesh\t%.5f\t(short-run, Poisson-floored)\n", st.OccurrenceRelStdDev)
	fmt.Fprintf(out, "occurrence_rel_stddev_steady\t%.5f\t(0.001)\n", st.SteadyOccurrenceRelStdDev)
	fmt.Fprintf(out, "redundant_inserted_with_detector\t%.1f\tper node\n", st.RedundantInsertedPerNodeWith)
	fmt.Fprintf(out, "redundant_inserted_without_detector\t%.1f\tper node\n", st.RedundantInsertedPerNodeWithout)
	fmt.Fprintf(out, "redundancy_reduction_pct\t%.1f\t(31)\n", st.RedundancyReductionPct)
	return nil
}
