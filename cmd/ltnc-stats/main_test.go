package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTinyMesh(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "48", "-nodes", "8", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, field := range []string{
		"pick_first_accept_rate",
		"build_target_rate",
		"occurrence_rel_stddev_steady",
		"redundancy_reduction_pct",
	} {
		if !strings.Contains(out, field) {
			t.Errorf("missing field %s", field)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "0"}, &buf); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run([]string{"-wat"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
